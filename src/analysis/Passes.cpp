//===- analysis/Passes.cpp - Evidence-gated rewrite passes ----------------===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete rewrite passes behind opt::PassManager. Each pass reads
/// the shared PassEvidence (UsageSummary classifications, dead-value
/// bits, per-instruction frequencies) and proposes candidate modules via
/// ModuleRewriter:
///
///   dead-stores        re-homed removeProfiledDeadCode (first and last)
///   map-to-array       linear lower-bound scans over build-once-read-many
///                      arrays become binary searches (derby's page index)
///   clone-per-op       loop-invariant fresh-structure call chains are
///                      hoisted; clone-then-update callees specialize to
///                      in-place variants (sunflow's Matrix chain)
///   once-read-memo     loads of once-read memo tables recompute the pure
///                      value chain locally, stranding the table for the
///                      final dead-store sweep (sunflow's bits cache)
///
/// The static matchers here are *filters*, not proofs: every candidate is
/// validated output-preserving by the PassManager on both engines before
/// it commits, and the fuzzer's `optimize` oracle mode replays the same
/// contract over random programs.
///
//===----------------------------------------------------------------------===//

#include "analysis/PassManager.h"

#include "ir/Clone.h"
#include "ir/Module.h"
#include "ir/Rewrite.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

using namespace lud;
using namespace lud::opt;

namespace {

std::string itos(uint64_t V) { return std::to_string(V); }

//===----------------------------------------------------------------------===//
// FuncIndex: register defs, use counts and the block predecessor map for
// one function — the substrate every matcher below queries.
//===----------------------------------------------------------------------===//

struct FuncIndex {
  const Function &F;
  std::vector<std::vector<Instruction *>> Defs; // per register
  std::vector<uint32_t> Uses;                   // reads per register
  std::vector<std::vector<uint32_t>> Preds;     // per block

  explicit FuncIndex(const Function &Fn) : F(Fn) {
    Defs.resize(Fn.getNumRegs());
    Uses.assign(Fn.getNumRegs(), 0);
    Preds.resize(Fn.blocks().size());
    std::vector<Reg> Tmp;
    for (const auto &BB : Fn.blocks()) {
      for (const auto &I : BB->insts()) {
        Reg D = definedReg(*I);
        if (D != kNoReg && D < Defs.size())
          Defs[D].push_back(I.get());
        Tmp.clear();
        appendUsedRegs(*I, Tmp);
        for (Reg R : Tmp)
          if (R < Uses.size())
            ++Uses[R];
      }
      Instruction *T = BB->terminator();
      if (auto *Br = dyn_cast<BrInst>(T)) {
        Preds[Br->Target].push_back(BB->getId());
      } else if (auto *CB = dyn_cast<CondBrInst>(T)) {
        Preds[CB->TrueBlock].push_back(BB->getId());
        if (CB->FalseBlock != CB->TrueBlock)
          Preds[CB->FalseBlock].push_back(BB->getId());
      }
    }
  }

  Instruction *uniqueDef(Reg R) const {
    return R != kNoReg && R < Defs.size() && Defs[R].size() == 1
               ? Defs[R].front()
               : nullptr;
  }

  bool definedInBlock(Reg R, const BasicBlock *BB) const {
    if (R == kNoReg || R >= Defs.size())
      return false;
    for (Instruction *I : Defs[R])
      if (I->getParent() == BB)
        return true;
    return false;
  }
};

bool readsRegister(const Instruction &I, Reg R) {
  std::vector<Reg> Tmp;
  appendUsedRegs(I, Tmp);
  return std::find(Tmp.begin(), Tmp.end(), R) != Tmp.end();
}

int positionInBlock(const Instruction *I) {
  const BasicBlock *BB = I->getParent();
  for (size_t P = 0; P != BB->insts().size(); ++P)
    if (BB->insts()[P].get() == I)
      return int(P);
  return -1;
}

/// Execution count of a block, reconstructed from Gcost. Calls, plain
/// branches and returns-of-nothing never become graph nodes, so their
/// InstrFreq entries are 0; any value-producing or predicate instruction
/// in the block runs exactly once per block execution and carries the
/// real count.
uint64_t blockFreq(const BasicBlock &BB, const std::vector<uint64_t> &Freq) {
  uint64_t Out = 0;
  for (const auto &I : BB.insts())
    Out = std::max(Out, Freq[I->getId()]);
  return Out;
}

//===----------------------------------------------------------------------===//
// dead-stores: removeProfiledDeadCode re-homed as the first and last
// pipeline pass.
//===----------------------------------------------------------------------===//

class DeadStorePass : public RewritePass {
public:
  explicit DeadStorePass(const char *L) : Label(L) {}
  const char *name() const override { return Label.c_str(); }

  std::optional<RewriteCandidate> next(const PassEvidence &E) override {
    // Evidence only refreshes when a candidate commits. If we already
    // proposed against this snapshot (rolled back, or a commit that left
    // the executed-instruction count unchanged), stop instead of
    // re-proposing the identical module forever.
    if (Proposed && LastExec == E.ExecutedInstrs)
      return std::nullopt;
    OptimizeResult R = removeProfiledDeadCode(*E.M, *E.G, *E.DV);
    if (R.Stats.removedTotal() == 0)
      return std::nullopt;
    Proposed = true;
    LastExec = E.ExecutedInstrs;
    RewriteCandidate C;
    C.M = std::move(R.M);
    C.Target = Label + "#" + itos(Round++);
    C.Rationale = "profiled-dead sweep: " + itos(R.Stats.RemovedStores) +
                  " dead stores + " + itos(R.Stats.RemovedPure) +
                  " unread pure producers (" + itos(R.Stats.Iterations) +
                  " DCE rounds over " + itos(E.ExecutedInstrs) +
                  " executed instrs)";
    C.RemovedStores = R.Stats.RemovedStores;
    C.RemovedPure = R.Stats.RemovedPure;
    return C;
  }

private:
  std::string Label;
  uint64_t Round = 0;
  uint64_t LastExec = 0;
  bool Proposed = false;
};

//===----------------------------------------------------------------------===//
// map-to-array: a linear lower-bound scan over a sorted array whose site
// is classified build-once-read-many becomes a call to a synthesized
// binary search. Matches the canonical shape
//
//   pre:    ... ; br header
//   header: if (pos < size) goto scan else exit      (sole instruction)
//   scan:   at = base[pos]; if (at < key) goto step else exit
//   step:   pos = pos + 1; br header
//
// and replaces pre's terminator with `pos = lud.lowerBound(base, size,
// key, pos); br exit`, leaving the scan blocks unreachable.
//===----------------------------------------------------------------------===//

constexpr const char *LowerBoundName = "lud.lowerBound";

/// lud.lowerBound(a, size, key, lo): first index in [lo, size) whose
/// element is >= key — exactly what the linear scan computes when the
/// array is sorted (validation catches unsorted data).
void emitLowerBound(Module &Out) {
  Function *F = Out.addFunction(LowerBoundName, 4, 9);
  BasicBlock *Entry = F->addBlock();
  BasicBlock *Head = F->addBlock();
  BasicBlock *Body = F->addBlock();
  BasicBlock *Left = F->addBlock();
  BasicBlock *Right = F->addBlock();
  BasicBlock *Exit = F->addBlock();
  const Reg A = 0, Size = 1, Key = 2, Lo = 3, One = 4, Hi = 5, T = 6, Mid = 7,
            At = 8;
  Entry->append(ConstInst::makeInt(One, 1));
  Entry->append(new AssignInst(Hi, Size));
  Entry->append(new BrInst(Head->getId()));
  Head->append(new CondBrInst(CmpOp::Lt, Lo, Hi, Body->getId(), Exit->getId()));
  Body->append(new BinInst(BinOp::Add, T, Lo, Hi));
  Body->append(new BinInst(BinOp::Shr, Mid, T, One));
  Body->append(new LoadElemInst(At, A, Mid));
  Body->append(
      new CondBrInst(CmpOp::Lt, At, Key, Left->getId(), Right->getId()));
  Left->append(new BinInst(BinOp::Add, Lo, Mid, One));
  Left->append(new BrInst(Head->getId()));
  Right->append(new AssignInst(Hi, Mid));
  Right->append(new BrInst(Head->getId()));
  Exit->append(new ReturnInst(Lo));
}
constexpr size_t LowerBoundInstrs = 13;

struct ScanLoop {
  uint32_t Header = 0, Exit = 0;
  Instruction *PreBr = nullptr; // the preheader's br into the scan
  Instruction *Load = nullptr;  // the probe
  Reg Pos = kNoReg, Size = kNoReg, Key = kNoReg, Base = kNoReg;
  AllocSiteId Site = kNoAllocSite;
  uint64_t Probes = 0, Lookups = 0;
};

std::optional<ScanLoop> matchScanLoop(const Function &F, const FuncIndex &IX,
                                      uint32_t H, const PassEvidence &E) {
  const BasicBlock *HB = F.getBlock(H);
  if (HB->insts().size() != 1)
    return std::nullopt;
  auto *HBr = dyn_cast<CondBrInst>(HB->terminator());
  if (!HBr || HBr->Cmp != CmpOp::Lt)
    return std::nullopt;
  Reg Pos = HBr->Lhs, Size = HBr->Rhs;
  uint32_t ScanId = HBr->TrueBlock, ExitId = HBr->FalseBlock;
  if (ScanId == H || ExitId == H || ScanId == ExitId)
    return std::nullopt;

  const BasicBlock *SB = F.getBlock(ScanId);
  if (SB->insts().size() != 2)
    return std::nullopt;
  auto *Load = dyn_cast<LoadElemInst>(SB->insts().front().get());
  auto *SBr = dyn_cast<CondBrInst>(SB->terminator());
  if (!Load || !SBr || SBr->Cmp != CmpOp::Lt)
    return std::nullopt;
  if (Load->Index != Pos || SBr->Lhs != Load->Dst || SBr->FalseBlock != ExitId)
    return std::nullopt;
  Reg Key = SBr->Rhs, Base = Load->Base, At = Load->Dst;
  if (At == Pos || At == Key || At == Size || At == Base)
    return std::nullopt;
  uint32_t StepId = SBr->TrueBlock;
  if (StepId == H || StepId == ScanId || StepId == ExitId)
    return std::nullopt;

  const BasicBlock *Step = F.getBlock(StepId);
  if (Step->insts().size() != 2)
    return std::nullopt;
  auto *Inc = dyn_cast<BinInst>(Step->insts().front().get());
  auto *StepBr = dyn_cast<BrInst>(Step->terminator());
  if (!Inc || !StepBr || StepBr->Target != H)
    return std::nullopt;
  if (Inc->Op != BinOp::Add || Inc->Dst != Pos || Inc->Lhs != Pos)
    return std::nullopt;
  Instruction *OneDef = IX.uniqueDef(Inc->Rhs);
  auto *OneC = OneDef ? dyn_cast<ConstInst>(OneDef) : nullptr;
  if (!OneC || OneC->Lit != ConstInst::LitKind::Int || OneC->IntVal != 1)
    return std::nullopt;

  // Loop structure: scan and step are private to the loop; the header has
  // exactly one entry edge besides the backedge, ending in a plain br.
  if (IX.Preds[ScanId].size() != 1 || IX.Preds[StepId].size() != 1 ||
      IX.Preds[H].size() != 2)
    return std::nullopt;
  uint32_t PreId = IX.Preds[H][0] == StepId ? IX.Preds[H][1] : IX.Preds[H][0];
  if (PreId == StepId)
    return std::nullopt;
  const BasicBlock *Pre = F.getBlock(PreId);
  auto *PreBr = dyn_cast<BrInst>(Pre->terminator());
  if (!PreBr || PreBr->Target != H)
    return std::nullopt;

  // The probe result feeds only the comparison; the cursor is the only
  // register the loop redefines; everything else is invariant inside it.
  if (IX.Uses[At] != 1 || IX.Defs[At].size() != 1)
    return std::nullopt;
  const BasicBlock *LoopBlocks[3] = {HB, SB, Step};
  for (const BasicBlock *LB : LoopBlocks)
    if (IX.definedInBlock(Size, LB) || IX.definedInBlock(Key, LB) ||
        IX.definedInBlock(Base, LB) || IX.definedInBlock(Inc->Rhs, LB))
      return std::nullopt;
  for (Instruction *D : IX.Defs[Pos])
    if (D != Inc && (D->getParent() == HB || D->getParent() == SB ||
                     D->getParent() == Step))
      return std::nullopt;

  // Evidence gates: the array is a build-once-read-many structure and
  // the scan probes enough to make a binary search worthwhile.
  Instruction *BaseDef = IX.uniqueDef(Base);
  auto *AA = BaseDef ? dyn_cast<AllocArrayInst>(BaseDef) : nullptr;
  if (!AA)
    return std::nullopt;
  const UsageSummary *U = E.Usage->bySite(AA->Site);
  if (!U || U->Kind != UsageKind::BuildOnceReadMany)
    return std::nullopt;
  uint64_t Probes = (*E.InstrFreq)[Load->getId()];
  // The preheader's terminator is a plain Br (no Gcost node); the block's
  // other instructions carry its execution count.
  uint64_t Lookups = blockFreq(*Pre, *E.InstrFreq);
  if (Probes < 8 || Probes < 4 * std::max<uint64_t>(1, Lookups))
    return std::nullopt;

  ScanLoop S;
  S.Header = H;
  S.Exit = ExitId;
  S.PreBr = PreBr;
  S.Load = Load;
  S.Pos = Pos;
  S.Size = Size;
  S.Key = Key;
  S.Base = Base;
  S.Site = AA->Site;
  S.Probes = Probes;
  S.Lookups = Lookups;
  return S;
}

class MapToArrayPass : public RewritePass {
public:
  const char *name() const override { return "map-to-array"; }

  std::optional<RewriteCandidate> next(const PassEvidence &E) override {
    for (const auto &FP : E.M->functions()) {
      if (!FP || FP->blocks().empty())
        continue;
      FuncIndex IX(*FP);
      for (uint32_t H = 0; H != FP->blocks().size(); ++H) {
        std::string Target = "map-to-array " + FP->getName() + "#b" + itos(H);
        if (E.Attempted->count(Target))
          continue;
        std::optional<ScanLoop> S = matchScanLoop(*FP, IX, H, E);
        if (!S)
          continue;

        ModuleRewriter RW(*E.M);
        FuncId LB = E.M->findFunction(LowerBoundName);
        size_t Synth = 0;
        if (LB == kNoFunc) {
          LB = RW.addFunction(emitLowerBound);
          Synth = LowerBoundInstrs;
        }
        RW.replaceWith(S->PreBr->getId(),
                       {CallInst::makeDirect(S->Pos, LB,
                                             {S->Base, S->Size, S->Key, S->Pos}),
                        new BrInst(S->Exit)});

        const UsageSummary *U = E.Usage->bySite(S->Site);
        RewriteCandidate C;
        C.M = RW.apply();
        C.Target = std::move(Target);
        C.Rationale =
            "build-once-read-many array " + U->Description +
            " (writes=" + itos(U->Writes) + ", reads=" + itos(U->Reads) +
            ", read-after-last-write=" + itos(U->ReadsAfterLastWrite) +
            "): linear scan probed " + itos(S->Probes) + "x across " +
            itos(S->Lookups) + " lookups; replaced with binary search (" +
            LowerBoundName + ")";
        C.RewrittenInstrs = 2 + Synth;
        return C;
      }
    }
    return std::nullopt;
  }
};

//===----------------------------------------------------------------------===//
// Interprocedural freshness summaries shared by the clone-per-op
// strategies: which functions write only structures they (transitively)
// allocated or that arrive through specific parameters, and what their
// return value is.
//===----------------------------------------------------------------------===//

/// Abstract provenance of one register's value.
struct AbsVal {
  enum K : uint8_t { Bottom, Fresh, Param, Other } Kind = Bottom;
  unsigned P = 0;
  static AbsVal fresh() { return {Fresh, 0}; }
  static AbsVal param(unsigned P) { return {Param, P}; }
  static AbsVal other() { return {Other, 0}; }
  bool operator==(const AbsVal &O) const {
    return Kind == O.Kind && (Kind != Param || P == O.P);
  }
};

AbsVal joinAV(AbsVal A, AbsVal B) {
  if (A.Kind == AbsVal::Bottom)
    return B;
  if (B.Kind == AbsVal::Bottom)
    return A;
  return A == B ? A : AbsVal::other();
}

struct FnSummary {
  /// Writes somewhere it cannot prove fresh or parameter-derived
  /// (statics, natives, virtual calls, unknown bases).
  bool Impure = false;
  /// Parameters the function may write through (directly or via callees).
  uint32_t WriteParams = 0;
  enum RetKind : uint8_t { RetFresh, RetParam, RetOther } Ret = RetFresh;
  unsigned RetP = 0;

  bool operator==(const FnSummary &O) const {
    return Impure == O.Impure && WriteParams == O.WriteParams &&
           Ret == O.Ret && (Ret != RetParam || RetP == O.RetP);
  }
};

std::vector<AbsVal> computeAbsVals(const Function &F,
                                   const std::vector<FnSummary> &Sums) {
  std::vector<AbsVal> AV(F.getNumRegs());
  for (unsigned I = 0; I != F.getNumParams() && I < AV.size(); ++I)
    AV[I] = AbsVal::param(I);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks())
      for (const auto &IP : BB->insts()) {
        const Instruction &I = *IP;
        Reg D = definedReg(I);
        if (D == kNoReg || D >= AV.size())
          continue;
        AbsVal V = AbsVal::other();
        switch (I.getKind()) {
        case Instruction::Kind::Alloc:
        case Instruction::Kind::AllocArray:
          V = AbsVal::fresh();
          break;
        case Instruction::Kind::Assign:
          V = AV[cast<AssignInst>(&I)->Src];
          break;
        // Components of a fresh structure are fresh; components of a
        // parameter belong to that parameter. (Optimistic for refs a
        // callee stored across the boundary — the differential
        // validation is the backstop, as for every pass decision.)
        case Instruction::Kind::LoadField: {
          AbsVal B = AV[cast<LoadFieldInst>(&I)->Base];
          V = B.Kind == AbsVal::Fresh || B.Kind == AbsVal::Param
                  ? B
                  : AbsVal::other();
          break;
        }
        case Instruction::Kind::LoadElem: {
          AbsVal B = AV[cast<LoadElemInst>(&I)->Base];
          V = B.Kind == AbsVal::Fresh || B.Kind == AbsVal::Param
                  ? B
                  : AbsVal::other();
          break;
        }
        case Instruction::Kind::Call: {
          const auto *C = cast<CallInst>(&I);
          if (!C->isVirtual() && C->Callee != kNoFunc &&
              C->Callee < Sums.size()) {
            const FnSummary &S = Sums[C->Callee];
            if (S.Ret == FnSummary::RetFresh)
              V = AbsVal::fresh();
            else if (S.Ret == FnSummary::RetParam && S.RetP < C->Args.size())
              V = AV[C->Args[S.RetP]];
          }
          break;
        }
        default:
          break; // consts, arithmetic, lengths: scalars
        }
        AbsVal J = joinAV(AV[D], V);
        if (!(J == AV[D])) {
          AV[D] = J;
          Changed = true;
        }
      }
  }
  return AV;
}

FnSummary deriveSummary(const Function &F,
                        const std::vector<FnSummary> &Sums) {
  std::vector<AbsVal> AV = computeAbsVals(F, Sums);
  FnSummary Out;
  AbsVal Ret;
  bool RetVoid = false;
  auto Written = [&](AbsVal B) {
    if (B.Kind == AbsVal::Fresh)
      return;
    if (B.Kind == AbsVal::Param && B.P < 32) {
      Out.WriteParams |= 1u << B.P;
      return;
    }
    Out.Impure = true;
  };
  for (const auto &BB : F.blocks())
    for (const auto &IP : BB->insts()) {
      const Instruction &I = *IP;
      switch (I.getKind()) {
      case Instruction::Kind::StoreField:
        Written(AV[cast<StoreFieldInst>(&I)->Base]);
        break;
      case Instruction::Kind::StoreElem:
        Written(AV[cast<StoreElemInst>(&I)->Base]);
        break;
      case Instruction::Kind::StoreStatic:
      case Instruction::Kind::NativeCall:
        Out.Impure = true;
        break;
      case Instruction::Kind::Call: {
        const auto *C = cast<CallInst>(&I);
        if (C->isVirtual() || C->Callee == kNoFunc ||
            C->Callee >= Sums.size()) {
          Out.Impure = true;
          break;
        }
        const FnSummary &S = Sums[C->Callee];
        Out.Impure |= S.Impure;
        for (unsigned P = 0; P != 32; ++P)
          if (S.WriteParams & (1u << P)) {
            if (P >= C->Args.size())
              Out.Impure = true;
            else
              Written(AV[C->Args[P]]);
          }
        break;
      }
      case Instruction::Kind::Return: {
        Reg Src = cast<ReturnInst>(&I)->Src;
        if (Src == kNoReg || Src >= AV.size())
          RetVoid = true;
        else
          Ret = joinAV(Ret, AV[Src]);
        break;
      }
      default:
        break;
      }
    }
  if (RetVoid || Ret.Kind == AbsVal::Other || Ret.Kind == AbsVal::Bottom)
    Out.Ret = FnSummary::RetOther;
  else if (Ret.Kind == AbsVal::Fresh)
    Out.Ret = FnSummary::RetFresh;
  else {
    Out.Ret = FnSummary::RetParam;
    Out.RetP = Ret.P;
  }
  return Out;
}

std::vector<FnSummary> summarizeFunctions(const Module &M) {
  std::vector<FnSummary> Sums(M.functions().size());
  // Optimistic fixpoint: summaries only degrade, so iteration converges;
  // each sweep propagates callee facts one call-graph level further.
  unsigned MaxIter = unsigned(M.functions().size()) + 4;
  for (unsigned Iter = 0; Iter != MaxIter; ++Iter) {
    bool Changed = false;
    for (const auto &FP : M.functions()) {
      if (!FP)
        continue;
      FnSummary S;
      if (FP->blocks().empty()) {
        S.Impure = true;
        S.Ret = FnSummary::RetOther;
      } else {
        S = deriveSummary(*FP, Sums);
      }
      if (!(S == Sums[FP->getId()])) {
        Sums[FP->getId()] = S;
        Changed = true;
      }
    }
    if (!Changed)
      return Sums;
  }
  for (auto &S : Sums) {
    S.Impure = true;
    S.Ret = FnSummary::RetOther;
  }
  return Sums;
}

//===----------------------------------------------------------------------===//
// clone-per-op, strategy 1: hoist a loop-invariant fresh-structure call
// chain out of a single-block loop. The chain may only write structures
// it allocated itself (per the summaries), the residual body must be
// register-only, and a clone-per-op-classified allocation site must back
// the chain as evidence.
//===----------------------------------------------------------------------===//

struct HoistMatch {
  const Function *F = nullptr;
  uint32_t Header = 0;
  Instruction *PreTerm = nullptr;
  std::vector<const Instruction *> Hoisted; // body order
  size_t Calls = 0;
  uint64_t Iters = 0, Entries = 0;
  std::string SiteEvidence;
};

std::optional<HoistMatch> matchHoist(const Module &M, const Function &F,
                                     const FuncIndex &IX, uint32_t H,
                                     const std::vector<FnSummary> &Sums,
                                     const PassEvidence &E) {
  const BasicBlock *HB = F.getBlock(H);
  if (HB->insts().size() != 1)
    return std::nullopt;
  auto *HBr = dyn_cast<CondBrInst>(HB->terminator());
  if (!HBr)
    return std::nullopt;

  // Single-block body branching straight back, one preheader.
  auto BodyLike = [&](uint32_t B) {
    if (B == H || B >= F.blocks().size())
      return false;
    auto *T = dyn_cast<BrInst>(F.getBlock(B)->terminator());
    return T && T->Target == H && IX.Preds[B].size() == 1 &&
           IX.Preds[B][0] == H;
  };
  uint32_t BodyId;
  if (BodyLike(HBr->TrueBlock))
    BodyId = HBr->TrueBlock;
  else if (BodyLike(HBr->FalseBlock))
    BodyId = HBr->FalseBlock;
  else
    return std::nullopt;
  if (IX.Preds[H].size() != 2)
    return std::nullopt;
  uint32_t PreId = IX.Preds[H][0] == BodyId ? IX.Preds[H][1] : IX.Preds[H][0];
  if (PreId == BodyId)
    return std::nullopt;
  auto *PreBr = dyn_cast<BrInst>(F.getBlock(PreId)->terminator());
  if (!PreBr || PreBr->Target != H)
    return std::nullopt;

  const BasicBlock *BB = F.getBlock(BodyId);
  const auto &Insts = BB->insts();
  size_t N = Insts.size();
  if (N < 2)
    return std::nullopt;

  // Positions of registers defined in the body (-2 = multiply defined).
  std::map<Reg, int> DefPos;
  for (size_t I = 0; I + 1 < N; ++I) {
    Reg D = definedReg(*Insts[I]);
    if (D == kNoReg)
      continue;
    auto R = DefPos.emplace(D, int(I));
    if (!R.second)
      R.first->second = -2;
  }

  std::vector<char> Hoist(N, 0);
  // Closure-local freshness: is this register a structure the hoisted
  // chain itself allocates? (Needed to pass fresh args into callees that
  // write through parameters.)
  std::function<bool(Reg)> FreshLocal = [&](Reg R) -> bool {
    auto It = DefPos.find(R);
    if (It == DefPos.end() || It->second < 0 || !Hoist[It->second])
      return false;
    const Instruction &DI = *Insts[It->second];
    switch (DI.getKind()) {
    case Instruction::Kind::Alloc:
    case Instruction::Kind::AllocArray:
      return true;
    case Instruction::Kind::Assign:
      return FreshLocal(cast<AssignInst>(&DI)->Src);
    case Instruction::Kind::Call: {
      const auto *C = cast<CallInst>(&DI);
      if (C->isVirtual() || C->Callee == kNoFunc || C->Callee >= Sums.size())
        return false;
      const FnSummary &S = Sums[C->Callee];
      if (S.Ret == FnSummary::RetFresh)
        return true;
      if (S.Ret == FnSummary::RetParam && S.RetP < C->Args.size())
        return FreshLocal(C->Args[S.RetP]);
      return false;
    }
    default:
      return false;
    }
  };
  auto Invariant = [&](Reg R, size_t I) {
    auto It = DefPos.find(R);
    if (It == DefPos.end())
      return true; // defined outside the body
    return It->second >= 0 && size_t(It->second) < I && Hoist[It->second];
  };

  std::vector<Reg> Tmp;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I + 1 < N; ++I) {
      if (Hoist[I])
        continue;
      const Instruction &Ins = *Insts[I];
      Reg D = definedReg(Ins);
      if (D != kNoReg) {
        auto It = DefPos.find(D);
        if (It == DefPos.end() || It->second != int(I))
          continue; // multiply defined in the body
      }
      Tmp.clear();
      appendUsedRegs(Ins, Tmp);
      bool Ops = true;
      for (Reg R : Tmp)
        Ops = Ops && Invariant(R, I);
      if (!Ops)
        continue;
      bool OK = false;
      switch (Ins.getKind()) {
      case Instruction::Kind::Const:
      case Instruction::Kind::Assign:
      case Instruction::Kind::Bin:
      case Instruction::Kind::Un:
      case Instruction::Kind::Alloc:
      case Instruction::Kind::AllocArray:
        OK = true;
        break;
      case Instruction::Kind::Call: {
        const auto *C = cast<CallInst>(&Ins);
        if (C->isVirtual() || C->Callee == kNoFunc ||
            C->Callee >= Sums.size())
          break;
        const FnSummary &S = Sums[C->Callee];
        if (S.Impure)
          break;
        OK = true;
        for (unsigned P = 0; P != 32 && OK; ++P)
          if (S.WriteParams & (1u << P))
            OK = P < C->Args.size() && FreshLocal(C->Args[P]);
        break;
      }
      default:
        break; // loads and stores stay in the loop
      }
      if (OK) {
        Hoist[I] = 1;
        Changed = true;
      }
    }
  }

  size_t NumCalls = 0;
  std::vector<const Instruction *> Hoisted;
  for (size_t I = 0; I + 1 < N; ++I) {
    if (!Hoist[I])
      continue;
    Hoisted.push_back(Insts[I].get());
    if (dyn_cast<CallInst>(Insts[I].get()))
      ++NumCalls;
  }
  if (NumCalls == 0)
    return std::nullopt;

  // The residual loop must be register-only: with no calls and no heap
  // writes left inside, nothing can perturb what the chain read, so its
  // per-iteration results were invariant.
  for (size_t I = 0; I + 1 < N; ++I) {
    if (Hoist[I])
      continue;
    const Instruction &Ins = *Insts[I];
    if (Ins.writesHeap() || isa<CallInst>(&Ins) || isa<NativeCallInst>(&Ins))
      return std::nullopt;
  }
  // The preheader copy must not change what iteration 1 reads: no
  // residual use of a hoisted definition before its body position, and
  // the header test must not read one at all.
  for (size_t I = 0; I + 1 < N; ++I) {
    if (!Hoist[I])
      continue;
    Reg D = definedReg(*Insts[I]);
    if (D == kNoReg)
      continue;
    if (readsRegister(*HB->terminator(), D))
      return std::nullopt;
    for (size_t J = 0; J < I; ++J)
      if (!Hoist[J] && readsRegister(*Insts[J], D))
        return std::nullopt;
  }

  // Profit gate: the loop actually spun. The trip count comes from the
  // body block (call instructions alone carry no Gcost frequency, but the
  // body always holds at least the residual computation); the header's
  // CondBr runs trips + entries times.
  uint64_t TripFreq = blockFreq(*BB, *E.InstrFreq);
  uint64_t HFreq = (*E.InstrFreq)[HB->terminator()->getId()];
  if (TripFreq == 0 && HFreq > 1)
    TripFreq = HFreq - 1; // all-call body: assume a single loop entry
  uint64_t Entries = HFreq > TripFreq ? HFreq - TripFreq : 1;
  if (TripFreq < 8 || TripFreq < 4 * std::max<uint64_t>(1, Entries))
    return std::nullopt;

  // Evidence gate: a clone-per-op-classified allocation site inside the
  // hoisted chain (or its transitive callees) backs the rewrite.
  std::set<FuncId> Closure;
  std::vector<FuncId> Work;
  for (const Instruction *Ins : Hoisted)
    if (auto *C = dyn_cast<CallInst>(Ins))
      Work.push_back(C->Callee);
  while (!Work.empty()) {
    FuncId Fn = Work.back();
    Work.pop_back();
    if (Fn == kNoFunc || !Closure.insert(Fn).second)
      continue;
    const Function *F2 = M.getFunction(Fn);
    for (const auto &B2 : F2->blocks())
      for (const auto &I2 : B2->insts())
        if (auto *C2 = dyn_cast<CallInst>(I2.get()))
          if (!C2->isVirtual())
            Work.push_back(C2->Callee);
  }
  std::string Evidence;
  for (AllocSiteId S = 0; S != M.getNumAllocSites(); ++S) {
    const UsageSummary *U = E.Usage->bySite(S);
    if (!U || U->Kind != UsageKind::ClonePerOp)
      continue;
    Instruction *AI = M.getAllocSite(S);
    Function *Owner = M.getInstrFunction(AI->getId());
    bool InChain = Owner && Closure.count(Owner->getId());
    if (!InChain && AI->getParent() == BB)
      InChain = std::find(Hoisted.begin(), Hoisted.end(), AI) != Hoisted.end();
    if (InChain) {
      Evidence = U->Description + " (instances=" + itos(U->Instances) +
                 ", writes=" + itos(U->Writes) + ", reads=" + itos(U->Reads) +
                 ")";
      break;
    }
  }
  if (Evidence.empty())
    return std::nullopt;

  HoistMatch R;
  R.F = &F;
  R.Header = H;
  R.PreTerm = PreBr;
  R.Hoisted = std::move(Hoisted);
  R.Calls = NumCalls;
  R.Iters = TripFreq;
  R.Entries = Entries;
  R.SiteEvidence = std::move(Evidence);
  return R;
}

//===----------------------------------------------------------------------===//
// clone-per-op, strategy 2: specialize a clone-then-update callee to
// update in place. Matches callees whose entry starts with
// `t = clone(param0)`, whose every heap access stays inside t's
// components, whose element stores are same-index updates, and which
// return t — then redirects one call site at a time to a synthesized
// `<callee>_inplace` that aliases t to the receiver instead of cloning.
//===----------------------------------------------------------------------===//

struct InPlaceCallee {
  const Function *F2 = nullptr;
  const CallInst *CloneCall = nullptr;
  std::string CloneDesc; // clone-per-op site evidence, empty if none
};

std::optional<InPlaceCallee> matchInPlaceCallee(const Module &M,
                                                const Function &F2,
                                                const FuncIndex &IX,
                                                const std::vector<FnSummary> &Sums,
                                                const PassEvidence &E) {
  if (F2.blocks().empty() || F2.getNumParams() < 1)
    return std::nullopt;
  const auto &EIn = F2.entry()->insts();
  if (EIn.empty())
    return std::nullopt;
  const auto *CC = dyn_cast<CallInst>(EIn.front().get());
  if (!CC || CC->isVirtual() || CC->Callee == kNoFunc || CC->Dst == kNoReg ||
      CC->Dst == 0)
    return std::nullopt;
  if (CC->Args.size() != 1 || CC->Args[0] != 0)
    return std::nullopt;
  if (CC->Callee >= Sums.size())
    return std::nullopt;
  const FnSummary &G = Sums[CC->Callee];
  if (G.Impure || G.WriteParams != 0 || G.Ret != FnSummary::RetFresh)
    return std::nullopt;
  Reg T = CC->Dst;
  // The receiver is consumed exactly once — by the clone.
  if (IX.Uses.size() == 0 || IX.Uses[0] != 1)
    return std::nullopt;

  // Grow the clone-component set from t.
  std::vector<char> Comp(F2.getNumRegs(), 0);
  Comp[T] = 1;
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (const auto &BB : F2.blocks())
      for (const auto &IP : BB->insts()) {
        Reg D = kNoReg, B = kNoReg;
        if (auto *A = dyn_cast<AssignInst>(IP.get())) {
          D = A->Dst;
          B = A->Src;
        } else if (auto *L = dyn_cast<LoadFieldInst>(IP.get())) {
          D = L->Dst;
          B = L->Base;
        } else if (auto *L = dyn_cast<LoadElemInst>(IP.get())) {
          D = L->Dst;
          B = L->Base;
        }
        if (D != kNoReg && B != kNoReg && Comp[B] && !Comp[D]) {
          Comp[D] = 1;
          Grew = true;
        }
      }
  }

  // Every heap access stays inside the clone; element stores are
  // same-index updates (`t.arr[i] = f(t.arr[i], invariants)`), so
  // applying them to the receiver instead of a copy is order-safe.
  size_t Stores = 0;
  for (const auto &BB : F2.blocks())
    for (const auto &IP : BB->insts()) {
      const Instruction &I = *IP;
      switch (I.getKind()) {
      case Instruction::Kind::Call:
        if (&I != CC)
          return std::nullopt;
        break;
      case Instruction::Kind::NativeCall:
      case Instruction::Kind::StoreStatic:
      case Instruction::Kind::LoadStatic:
      case Instruction::Kind::StoreField:
        return std::nullopt;
      case Instruction::Kind::LoadField:
        if (!Comp[cast<LoadFieldInst>(&I)->Base])
          return std::nullopt;
        break;
      case Instruction::Kind::ArrayLen:
        if (!Comp[cast<ArrayLenInst>(&I)->Base])
          return std::nullopt;
        break;
      case Instruction::Kind::LoadElem:
        if (!Comp[cast<LoadElemInst>(&I)->Base])
          return std::nullopt;
        break;
      case Instruction::Kind::StoreElem: {
        const auto *SE = cast<StoreElemInst>(&I);
        if (!Comp[SE->Base])
          return std::nullopt;
        // Source must be a shallow pure function of the same slot's old
        // value (loaded earlier in this block, slot registers untouched
        // in between) and loop-invariant scalars.
        int SEPos = positionInBlock(SE);
        std::function<bool(Reg, int)> Chain = [&](Reg R, int Depth) -> bool {
          if (Depth > 8)
            return false;
          if (R == SE->Index)
            return true;
          if (R < F2.getNumParams() && R != 0)
            return true;
          Instruction *DI = IX.uniqueDef(R);
          if (!DI)
            return false;
          switch (DI->getKind()) {
          case Instruction::Kind::Const:
            return true;
          case Instruction::Kind::Assign:
            return Chain(cast<AssignInst>(DI)->Src, Depth + 1);
          case Instruction::Kind::Bin:
            return Chain(cast<BinInst>(DI)->Lhs, Depth + 1) &&
                   Chain(cast<BinInst>(DI)->Rhs, Depth + 1);
          case Instruction::Kind::Un:
            return Chain(cast<UnInst>(DI)->Src, Depth + 1);
          case Instruction::Kind::LoadElem: {
            const auto *L = cast<LoadElemInst>(DI);
            if (L->Base != SE->Base || L->Index != SE->Index ||
                L->getParent() != SE->getParent())
              return false;
            int LPos = positionInBlock(L);
            if (LPos < 0 || LPos >= SEPos)
              return false;
            // Nothing between the load and the store may write the heap
            // or redefine the slot registers.
            for (int P = LPos + 1; P < SEPos; ++P) {
              const Instruction &Mid = *SE->getParent()->insts()[P];
              if (Mid.writesHeap())
                return false;
              Reg MD = definedReg(Mid);
              if (MD == SE->Index || MD == SE->Base)
                return false;
            }
            return true;
          }
          default:
            return false;
          }
        };
        if (!Chain(SE->Src, 0))
          return std::nullopt;
        ++Stores;
        break;
      }
      case Instruction::Kind::Return:
        if (cast<ReturnInst>(&I)->Src != T)
          return std::nullopt;
        break;
      default:
        break;
      }
    }
  if (Stores == 0)
    return std::nullopt;

  InPlaceCallee R;
  R.F2 = &F2;
  R.CloneCall = CC;
  for (AllocSiteId S = 0; S != M.getNumAllocSites(); ++S) {
    const UsageSummary *U = E.Usage->bySite(S);
    if (!U || U->Kind != UsageKind::ClonePerOp)
      continue;
    Function *Owner = M.getInstrFunction(M.getAllocSite(S)->getId());
    if (Owner && Owner->getId() == CC->Callee) {
      R.CloneDesc = U->Description + " (instances=" + itos(U->Instances) +
                    ", writes=" + itos(U->Writes) +
                    ", reads=" + itos(U->Reads) + ")";
      break;
    }
  }
  return R;
}

class ClonePerOpPass : public RewritePass {
public:
  const char *name() const override { return "clone-per-op"; }

  std::optional<RewriteCandidate> next(const PassEvidence &E) override {
    const Module &M = *E.M;
    std::vector<FnSummary> Sums = summarizeFunctions(M);

    // Strategy 1: hoist invariant fresh-structure chains out of loops.
    for (const auto &FP : M.functions()) {
      if (!FP || FP->blocks().empty())
        continue;
      FuncIndex IX(*FP);
      for (uint32_t H = 0; H != FP->blocks().size(); ++H) {
        std::string Target = "hoist " + FP->getName() + "#b" + itos(H);
        if (E.Attempted->count(Target))
          continue;
        std::optional<HoistMatch> HM = matchHoist(M, *FP, IX, H, Sums, E);
        if (!HM)
          continue;

        ModuleRewriter RW(M);
        std::vector<Instruction *> Clones;
        for (const Instruction *I : HM->Hoisted)
          Clones.push_back(cloneInstr(*I));
        RW.insertBefore(HM->PreTerm->getId(), std::move(Clones));
        for (const Instruction *I : HM->Hoisted)
          RW.drop(I->getId());

        RewriteCandidate C;
        C.M = RW.apply();
        C.Target = std::move(Target);
        C.Rationale = "clone-per-op chain: hoisted " +
                      itos(HM->Hoisted.size()) + " loop-invariant instrs (" +
                      itos(HM->Calls) + " fresh-structure calls, iters=" +
                      itos(HM->Iters) + ", entries=" + itos(HM->Entries) +
                      ") out of loop b" + itos(HM->Header) +
                      "; evidence: " + HM->SiteEvidence;
        C.RewrittenInstrs = HM->Hoisted.size();
        return C;
      }
    }

    // Strategy 2: specialize clone-then-update callees to in-place
    // variants, one call site at a time.
    for (const auto &FP : M.functions()) {
      if (!FP || FP->blocks().empty())
        continue;
      FuncIndex IX(*FP);
      std::optional<InPlaceCallee> IP = matchInPlaceCallee(M, *FP, IX, Sums, E);
      if (!IP)
        continue;
      for (const auto &CF : M.functions()) {
        if (!CF || CF->blocks().empty() || CF.get() == FP.get())
          continue;
        for (const auto &BB : CF->blocks()) {
          size_t Ord = 0;
          for (const auto &I : BB->insts()) {
            auto *CS = dyn_cast<CallInst>(I.get());
            if (!CS || CS->isVirtual() || CS->Callee != FP->getId())
              continue;
            size_t MyOrd = Ord++;
            std::string Target = "inplace " + CF->getName() + "#b" +
                                 itos(BB->getId()) + "." + itos(MyOrd) +
                                 "->" + FP->getName();
            if (E.Attempted->count(Target))
              continue;
            // Evidence gate: the clone's site is classified clone-per-op,
            // or the site has already left the hot loop (a committed
            // hoist dropped its frequency to a handful of calls). A call
            // carries no Gcost frequency of its own, so the enclosing
            // block's count stands in for the site's.
            uint64_t SiteFreq = blockFreq(*BB, *E.InstrFreq);
            if (IP->CloneDesc.empty() && SiteFreq > 4)
              continue;
            return buildInPlace(E, *IP, CS, std::move(Target), SiteFreq);
          }
        }
      }
    }
    return std::nullopt;
  }

private:
  RewriteCandidate buildInPlace(const PassEvidence &E, const InPlaceCallee &IP,
                                const CallInst *CS, std::string Target,
                                uint64_t SiteFreq) {
    ModuleRewriter RW(*E.M);
    const Function *Src = IP.F2;
    const CallInst *Clone = IP.CloneCall;
    std::string Name = Src->getName() + "_inplace";
    FuncId NewId = E.M->findFunction(Name);
    size_t Synth = 0;
    if (NewId == kNoFunc) {
      NewId = RW.addFunction([Src, Clone, Name](Module &Out) {
        Function *NF = Out.addFunction(Name, Src->getNumParams(),
                                       Src->getNumRegs());
        for (size_t I = 0; I != Src->blocks().size(); ++I)
          NF->addBlock();
        for (size_t BI = 0; BI != Src->blocks().size(); ++BI) {
          BasicBlock *NB = NF->getBlock(uint32_t(BI));
          for (const auto &I : Src->blocks()[BI]->insts()) {
            // The clone becomes an alias: updates hit the receiver.
            if (I.get() == Clone)
              NB->append(new AssignInst(Clone->Dst, 0));
            else
              NB->append(cloneInstr(*I));
          }
        }
      });
      for (const auto &BB : Src->blocks())
        Synth += BB->insts().size();
    }
    RW.replaceWith(CS->getId(),
                   {CallInst::makeDirect(CS->Dst, NewId, CS->Args)});

    RewriteCandidate C;
    C.M = RW.apply();
    C.Target = std::move(Target);
    C.Rationale =
        "clone-then-update callee " + Src->getName() +
        " applies a same-index element update to a structure it cloned; "
        "call site (freq=" + itos(SiteFreq) + ") redirected to " + Name +
        (IP.CloneDesc.empty() ? std::string()
                              : "; evidence: " + IP.CloneDesc);
    C.RewrittenInstrs = 1 + Synth;
    return C;
  }
};

//===----------------------------------------------------------------------===//
// once-read-memo: loads of a once-read memo table recompute the stored
// pure value chain locally (substituting the load index for the store
// index); the stranded table then falls to the final dead-store sweep.
// When the table holds float bits (sunflow's Float.floatToIntBits slot
// packing), the encode/decode pair cancels: the recomputed float feeds
// the BitsF consumer directly.
//===----------------------------------------------------------------------===//

class OnceReadMemoPass : public RewritePass {
public:
  const char *name() const override { return "once-read-memo"; }

  std::optional<RewriteCandidate> next(const PassEvidence &E) override {
    for (const auto &FP : E.M->functions()) {
      if (!FP || FP->blocks().empty())
        continue;
      FuncIndex IX(*FP);
      for (const auto &BB : FP->blocks())
        for (const auto &IPtr : BB->insts()) {
          auto *AA = dyn_cast<AllocArrayInst>(IPtr.get());
          if (!AA)
            continue;
          std::string Target =
              "once-read-memo " + FP->getName() + "#s" + itos(AA->Site);
          if (E.Attempted->count(Target))
            continue;
          std::optional<RewriteCandidate> C =
              tryRewrite(E, *FP, IX, AA, std::move(Target));
          if (C)
            return C;
        }
    }
    return std::nullopt;
  }

private:
  std::optional<RewriteCandidate> tryRewrite(const PassEvidence &E,
                                             const Function &F,
                                             const FuncIndex &IX,
                                             const AllocArrayInst *AA,
                                             std::string Target) {
    const UsageSummary *U = E.Usage->bySite(AA->Site);
    if (!U || U->Kind != UsageKind::OnceRead || U->Writes < 16)
      return std::nullopt;
    Reg AR = AA->Dst;
    if (IX.uniqueDef(AR) != AA)
      return std::nullopt;

    // The array must not escape: its only uses are element stores (one
    // static site — the memo fill) and element loads.
    const StoreElemInst *Store = nullptr;
    std::vector<const LoadElemInst *> Loads;
    for (const auto &BB : F.blocks())
      for (const auto &IPtr : BB->insts()) {
        const Instruction &I = *IPtr;
        if (&I == AA || !readsRegister(I, AR))
          continue;
        if (auto *SE = dyn_cast<StoreElemInst>(&I)) {
          if (SE->Base != AR || SE->Index == AR || SE->Src == AR || Store)
            return std::nullopt;
          Store = SE;
        } else if (auto *LE = dyn_cast<LoadElemInst>(&I)) {
          if (LE->Base != AR || LE->Index == AR)
            return std::nullopt;
          Loads.push_back(LE);
        } else {
          return std::nullopt;
        }
      }
    if (!Store || Loads.empty())
      return std::nullopt;

    // The stored value must be a short pure chain over the store index
    // and invariant (uniquely defined, index-free) registers.
    // DependsOnIdx: 1 = varies with the index (must be cloned per load),
    // 0 = invariant (readable as-is at the load site), -1 = not
    // rematerializable.
    std::function<int(Reg, int)> DependsOnIdx = [&](Reg R, int Depth) -> int {
      if (R == Store->Index)
        return 1;
      if (R < F.getNumParams())
        return 0;
      Instruction *DI = IX.uniqueDef(R);
      if (!DI || Depth > 8)
        return -1;
      switch (DI->getKind()) {
      case Instruction::Kind::Const:
        return 0;
      case Instruction::Kind::Assign:
        return DependsOnIdx(cast<AssignInst>(DI)->Src, Depth + 1);
      case Instruction::Kind::Un:
        return DependsOnIdx(cast<UnInst>(DI)->Src, Depth + 1);
      case Instruction::Kind::Bin: {
        int L = DependsOnIdx(cast<BinInst>(DI)->Lhs, Depth + 1);
        int Rr = DependsOnIdx(cast<BinInst>(DI)->Rhs, Depth + 1);
        return L < 0 || Rr < 0 ? -1 : std::max(L, Rr);
      }
      default:
        return -1;
      }
    };

    std::vector<const Instruction *> Chain; // topo order, producer last
    std::set<const Instruction *> InChain;
    std::vector<Reg> Tmp;
    std::function<bool(Reg, int)> Collect = [&](Reg R, int Depth) -> bool {
      int D = DependsOnIdx(R, Depth);
      if (D < 0)
        return false;
      if (D == 0 || R == Store->Index)
        return true; // leaf
      Instruction *DI = IX.uniqueDef(R);
      if (InChain.count(DI))
        return true;
      Tmp.clear();
      appendUsedRegs(*DI, Tmp);
      for (Reg Op : std::vector<Reg>(Tmp))
        if (!Collect(Op, Depth + 1))
          return false;
      InChain.insert(DI);
      Chain.push_back(DI);
      return true;
    };
    if (!Collect(Store->Src, 0) || Chain.size() > 8)
      return std::nullopt;

    // Does the chain end in a float->bits encode whose decodes can fuse?
    const Instruction *Root =
        Chain.empty() ? nullptr : Chain.back();
    const UnInst *RootFBits = nullptr;
    if (Root && definedReg(*Root) == Store->Src)
      if (auto *UI = dyn_cast<UnInst>(Root))
        if (UI->Op == UnOp::FBits)
          RootFBits = UI;

    ModuleRewriter RW(*E.M);
    size_t Rewritten = 0, Fused = 0;
    for (const LoadElemInst *L : Loads) {
      // Fusion: the load's sole consumer is the matching bits->float
      // decode, later in the same block.
      const UnInst *Decode = nullptr;
      if (RootFBits && L->Dst != kNoReg && IX.Uses[L->Dst] == 1) {
        int LPos = positionInBlock(L);
        const auto &BI = L->getParent()->insts();
        for (size_t P = size_t(LPos) + 1; P != BI.size(); ++P)
          if (auto *UI = dyn_cast<UnInst>(BI[P].get()))
            if (UI->Op == UnOp::BitsF && UI->Src == L->Dst) {
              Decode = UI;
              break;
            }
      }
      size_t Count = Chain.size() - (Decode ? 1 : 0);
      Reg Value = Decode ? RootFBits->Src : Store->Src;
      Reg TargetDst = Decode ? Decode->Dst : L->Dst;

      std::map<Reg, Reg> Map;
      Map[Store->Index] = L->Index;
      auto Lk = [&](Reg R) {
        auto It = Map.find(R);
        return It == Map.end() ? R : It->second;
      };
      std::vector<Instruction *> Repl;
      bool ValueEmitted = false;
      for (size_t CI = 0; CI != Count; ++CI) {
        const Instruction &In = *Chain[CI];
        Reg D = definedReg(In);
        bool IsValue = D == Value;
        Reg ND = IsValue ? TargetDst : RW.newReg(F.getId());
        switch (In.getKind()) {
        case Instruction::Kind::Assign:
          Repl.push_back(new AssignInst(ND, Lk(cast<AssignInst>(&In)->Src)));
          break;
        case Instruction::Kind::Bin: {
          const auto *B = cast<BinInst>(&In);
          Repl.push_back(new BinInst(B->Op, ND, Lk(B->Lhs), Lk(B->Rhs)));
          break;
        }
        case Instruction::Kind::Un: {
          const auto *UI = cast<UnInst>(&In);
          Repl.push_back(new UnInst(UI->Op, ND, Lk(UI->Src)));
          break;
        }
        default:
          for (Instruction *R2 : Repl)
            delete R2;
          return std::nullopt;
        }
        Map[D] = ND;
        ValueEmitted = ValueEmitted || IsValue;
      }
      if (!ValueEmitted)
        Repl.push_back(new AssignInst(TargetDst, Lk(Value)));
      Rewritten += Repl.size();
      RW.replaceWith(L->getId(), std::move(Repl));
      if (Decode) {
        RW.drop(Decode->getId());
        ++Fused;
      }
    }

    RewriteCandidate C;
    C.M = RW.apply();
    C.Target = std::move(Target);
    C.Rationale =
        "once-read memo table " + U->Description + " (writes=" +
        itos(U->Writes) + ", reads=" + itos(U->Reads) +
        ", read-after-last-write=" + itos(U->ReadsAfterLastWrite) + "): " +
        itos(Loads.size()) + " load site(s) recompute a depth-" +
        itos(Chain.size()) + " pure chain" +
        (Fused ? " (" + itos(Fused) + " bits round-trip(s) cancelled)"
               : std::string()) +
        "; the table is left for the final dead-store sweep";
    C.RewrittenInstrs = Rewritten;
    return C;
  }
};

} // namespace

std::unique_ptr<RewritePass> lud::opt::createDeadStorePass(const char *Label) {
  return std::make_unique<DeadStorePass>(Label);
}

std::unique_ptr<RewritePass> lud::opt::createMapToArrayPass() {
  return std::make_unique<MapToArrayPass>();
}

std::unique_ptr<RewritePass> lud::opt::createClonePerOpPass() {
  return std::make_unique<ClonePerOpPass>();
}

std::unique_ptr<RewritePass> lud::opt::createOnceReadMemoPass() {
  return std::make_unique<OnceReadMemoPass>();
}
