//===- analysis/CostModel.cpp - Relative abstract costs/benefits -----------===//

#include "analysis/CostModel.h"

#include <algorithm>

using namespace lud;

CostModel::CostModel(const DepGraph &G) : G(G) {
  auto Note = [&](const HeapLoc &L) {
    std::vector<FieldSlot> &Slots = FieldsByTag[L.Tag];
    if (std::find(Slots.begin(), Slots.end(), L.Slot) == Slots.end())
      Slots.push_back(L.Slot);
  };
  for (const auto &[Loc, Writers] : G.writers())
    Note(Loc);
  for (const auto &[Loc, Readers] : G.readers())
    Note(Loc);
  for (auto &[Tag, Slots] : FieldsByTag)
    std::sort(Slots.begin(), Slots.end());
}

namespace {

/// Frequency sums saturate instead of wrapping: a fuzzed program can pile
/// enough executions onto one closure that the uint64 accumulator
/// overflows, and a wrapped cost would rank a hot structure as nearly
/// free. Saturation keeps the ordering sane ("at least this expensive").
uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t S = A + B;
  return S < A ? ~uint64_t(0) : S;
}

/// Shared BFS worker. Follows Out edges when Forward, else In edges.
/// Neighbors for which \p Blocked returns true are neither counted nor
/// expanded. Returns the frequency sum over visited nodes (start included)
/// and invokes \p OnVisit for each visited node.
template <typename BlockedFn, typename VisitFn>
uint64_t closureFreq(const DepGraph &G, NodeId Start, bool Forward,
                     BlockedFn Blocked, VisitFn OnVisit) {
  std::vector<NodeId> Work;
  std::unordered_map<NodeId, bool> Visited;
  Work.push_back(Start);
  Visited[Start] = true;
  uint64_t Sum = 0;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    const DepGraph::Node &Node = G.node(N);
    Sum = saturatingAdd(Sum, G.freq(N));
    OnVisit(Node);
    const std::vector<NodeId> &Next = Forward ? Node.Out : Node.In;
    for (NodeId M : Next) {
      if (Visited.count(M))
        continue;
      Visited[M] = true;
      if (Blocked(G.node(M)))
        continue;
      Work.push_back(M);
    }
  }
  return Sum;
}

} // namespace

uint64_t CostModel::abstractCost(NodeId N) const {
  return closureFreq(
      G, N, /*Forward=*/false, [](const DepGraph::Node &) { return false; },
      [](const DepGraph::Node &) {});
}

uint64_t CostModel::hrac(NodeId N) const {
  auto It = HracCache.find(N);
  if (It != HracCache.end())
    return It->second;
  // Definition 5: no node on the path may read from a static or object
  // field, so heap-reading predecessors are not entered (and not counted).
  uint64_t Cost = closureFreq(
      G, N, /*Forward=*/false,
      [](const DepGraph::Node &M) { return M.ReadsHeap; },
      [](const DepGraph::Node &) {});
  HracCache.emplace(N, Cost);
  return Cost;
}

const BenefitInfo &CostModel::hrab(NodeId N) const {
  auto It = HrabCache.find(N);
  if (It != HrabCache.end())
    return It->second;
  BenefitInfo Info;
  Info.Benefit = closureFreq(
      G, N, /*Forward=*/true,
      [](const DepGraph::Node &M) { return M.WritesHeap; },
      [&Info](const DepGraph::Node &M) {
        if (M.Consumer == ConsumerKind::Predicate)
          Info.ReachesPredicate = true;
        else if (M.Consumer == ConsumerKind::Native)
          Info.ReachesNative = true;
      });
  return HrabCache.emplace(N, Info).first->second;
}

LocCostBenefit CostModel::locCostBenefit(const HeapLoc &L) const {
  LocCostBenefit CB;
  auto WIt = G.writers().find(L);
  if (WIt != G.writers().end() && !WIt->second.empty()) {
    uint64_t Sum = 0;
    for (NodeId W : WIt->second)
      Sum = saturatingAdd(Sum, hrac(W));
    CB.NumWriters = WIt->second.size();
    CB.Rac = double(Sum) / double(CB.NumWriters);
  }
  auto RIt = G.readers().find(L);
  if (RIt != G.readers().end() && !RIt->second.empty()) {
    uint64_t Sum = 0;
    for (NodeId R : RIt->second) {
      const BenefitInfo &B = hrab(R);
      Sum = saturatingAdd(Sum, B.Benefit);
      CB.ReachesPredicate |= B.ReachesPredicate;
      CB.ReachesNative |= B.ReachesNative;
    }
    CB.NumReaders = RIt->second.size();
    CB.Rab = double(Sum) / double(CB.NumReaders);
  }
  return CB;
}

const std::vector<FieldSlot> &CostModel::fieldsOf(uint64_t Tag) const {
  static const std::vector<FieldSlot> Empty;
  auto It = FieldsByTag.find(Tag);
  return It == FieldsByTag.end() ? Empty : It->second;
}

std::vector<uint64_t> CostModel::allTags() const {
  std::vector<uint64_t> Tags;
  Tags.reserve(G.allocNodes().size());
  for (const auto &[Tag, Node] : G.allocNodes())
    Tags.push_back(Tag);
  std::sort(Tags.begin(), Tags.end());
  return Tags;
}

ObjectCostBenefit CostModel::objectCostBenefit(uint64_t RootTag,
                                               unsigned Depth) const {
  ObjectCostBenefit Out;
  // Definition 7: breadth-first reference tree of height Depth, cycles and
  // nodes deeper than Depth removed.
  std::unordered_map<uint64_t, unsigned> DepthOf;
  std::vector<uint64_t> Order;
  DepthOf[RootTag] = 0;
  Order.push_back(RootTag);
  for (size_t Head = 0; Head != Order.size(); ++Head) {
    uint64_t Tag = Order[Head];
    unsigned D = DepthOf[Tag];
    if (D >= Depth)
      continue;
    for (FieldSlot Slot : fieldsOf(Tag)) {
      auto It = G.refChildren().find(HeapLoc{Tag, Slot});
      if (It == G.refChildren().end())
        continue;
      for (uint64_t Child : It->second) {
        if (DepthOf.count(Child))
          continue; // Cycle / diamond: keep the first (shallowest) depth.
        DepthOf[Child] = D + 1;
        Order.push_back(Child);
      }
    }
  }
  Out.TreeObjects = Order.size();

  // Fields of objects at depth < n count (scalar fields always, reference
  // fields when a pointed-to object is inside the tree). 1-RAC is thus the
  // object's own fields; each extra level adds one ring of the structure.
  for (uint64_t Tag : Order) {
    if (DepthOf[Tag] >= Depth)
      continue;
    for (FieldSlot Slot : fieldsOf(Tag)) {
      HeapLoc L{Tag, Slot};
      // Reference fields count only when a pointed-to object is in the
      // tree as well (Definition 7); scalar fields always count.
      auto RC = G.refChildren().find(L);
      if (RC != G.refChildren().end()) {
        bool AnyChildInTree = false;
        for (uint64_t Child : RC->second) {
          if (DepthOf.count(Child)) {
            AnyChildInTree = true;
            break;
          }
        }
        if (!AnyChildInTree)
          continue;
      }
      LocCostBenefit CB = locCostBenefit(L);
      Out.NRac += CB.Rac;
      Out.NRab += CB.Rab;
      Out.ReachesPredicate |= CB.ReachesPredicate;
      Out.ReachesNative |= CB.ReachesNative;
      ++Out.FieldsCounted;
    }
  }
  return Out;
}
