//===- analysis/CostModel.cpp - Relative abstract costs/benefits -----------===//

#include "analysis/CostModel.h"

#include <algorithm>

using namespace lud;

CostModel::CostModel(const FrozenGraph &G) : G(G) { init(); }

CostModel::CostModel(const DepGraph &DG)
    : Owned(std::make_unique<FrozenGraph>(DG)), G(*Owned) {
  init();
}

void CostModel::init() {
  // The location universe is sorted by (Tag, Slot), so each tag's slots
  // arrive in ascending order and adjacent-dedup reproduces the sorted
  // unique slot list directly.
  for (size_t I = 0; I != G.numLocs(); ++I) {
    if (G.writersAt(I).empty() && G.readersAt(I).empty())
      continue; // refchild-only location: not an observed field access.
    HeapLoc L = G.loc(I);
    std::vector<FieldSlot> &Slots = FieldsByTag[L.Tag];
    if (Slots.empty() || Slots.back() != L.Slot)
      Slots.push_back(L.Slot);
  }
  const size_t N = G.numNodes();
  HracCache.resize(N);
  HracValid.assign(N, 0);
  HrabCache.resize(N);
  HrabValid.assign(N, 0);
  VisitMark.assign(N, 0);
}

namespace {

/// Frequency sums saturate instead of wrapping: a fuzzed program can pile
/// enough executions onto one closure that the uint64 accumulator
/// overflows, and a wrapped cost would rank a hot structure as nearly
/// free. Saturation keeps the ordering sane ("at least this expensive").
uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t S = A + B;
  return S < A ? ~uint64_t(0) : S;
}

} // namespace

/// Shared BFS worker over the CSR adjacency. Follows out() when Forward,
/// else in(). Neighbors for which \p Blocked returns true are neither
/// counted nor expanded. Returns the frequency sum over visited nodes
/// (start included) and invokes \p OnVisit for each visited node. Visited
/// state is the epoch-stamped dense column, so a query costs no O(N)
/// clear and no hashing.
template <typename BlockedFn, typename VisitFn>
static uint64_t closureFreq(const FrozenGraph &G, NodeId Start, bool Forward,
                            std::vector<uint32_t> &Mark, uint32_t Epoch,
                            std::vector<NodeId> &Work, BlockedFn Blocked,
                            VisitFn OnVisit) {
  Work.clear();
  Work.push_back(Start);
  Mark[Start] = Epoch;
  uint64_t Sum = 0;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    Sum = saturatingAdd(Sum, G.freq(N));
    OnVisit(N);
    for (NodeId M : Forward ? G.out(N) : G.in(N)) {
      if (Mark[M] == Epoch)
        continue;
      Mark[M] = Epoch;
      if (Blocked(M))
        continue;
      Work.push_back(M);
    }
  }
  return Sum;
}

uint64_t CostModel::abstractCost(NodeId N) const {
  return closureFreq(
      G, N, /*Forward=*/false, VisitMark, ++VisitEpoch, WorkScratch,
      [](NodeId) { return false; }, [](NodeId) {});
}

uint64_t CostModel::hrac(NodeId N) const {
  if (HracValid[N])
    return HracCache[N];
  // Definition 5: no node on the path may read from a static or object
  // field, so heap-reading predecessors are not entered (and not counted).
  uint64_t Cost = closureFreq(
      G, N, /*Forward=*/false, VisitMark, ++VisitEpoch, WorkScratch,
      [this](NodeId M) { return G.readsHeap(M); }, [](NodeId) {});
  HracCache[N] = Cost;
  HracValid[N] = 1;
  return Cost;
}

const BenefitInfo &CostModel::hrab(NodeId N) const {
  if (HrabValid[N])
    return HrabCache[N];
  BenefitInfo Info;
  Info.Benefit = closureFreq(
      G, N, /*Forward=*/true, VisitMark, ++VisitEpoch, WorkScratch,
      [this](NodeId M) { return G.writesHeap(M); },
      [this, &Info](NodeId M) {
        ConsumerKind C = G.consumer(M);
        if (C == ConsumerKind::Predicate)
          Info.ReachesPredicate = true;
        else if (C == ConsumerKind::Native)
          Info.ReachesNative = true;
      });
  HrabCache[N] = Info;
  HrabValid[N] = 1;
  return HrabCache[N];
}

LocCostBenefit CostModel::locCostBenefit(const HeapLoc &L) const {
  LocCostBenefit CB;
  auto Writers = G.writersOf(L);
  if (!Writers.empty()) {
    uint64_t Sum = 0;
    for (NodeId W : Writers)
      Sum = saturatingAdd(Sum, hrac(W));
    CB.NumWriters = Writers.size();
    CB.Rac = double(Sum) / double(CB.NumWriters);
  }
  auto Readers = G.readersOf(L);
  if (!Readers.empty()) {
    uint64_t Sum = 0;
    for (NodeId R : Readers) {
      const BenefitInfo &B = hrab(R);
      Sum = saturatingAdd(Sum, B.Benefit);
      CB.ReachesPredicate |= B.ReachesPredicate;
      CB.ReachesNative |= B.ReachesNative;
    }
    CB.NumReaders = Readers.size();
    CB.Rab = double(Sum) / double(CB.NumReaders);
  }
  return CB;
}

const std::vector<FieldSlot> &CostModel::fieldsOf(uint64_t Tag) const {
  static const std::vector<FieldSlot> Empty;
  auto It = FieldsByTag.find(Tag);
  return It == FieldsByTag.end() ? Empty : It->second;
}

std::vector<uint64_t> CostModel::allTags() const {
  std::vector<uint64_t> Tags;
  Tags.reserve(G.allocEntries().size());
  for (const auto &[Tag, Node] : G.allocEntries())
    Tags.push_back(Tag);
  return Tags; // allocEntries() is already tag-sorted.
}

ObjectCostBenefit CostModel::objectCostBenefit(uint64_t RootTag,
                                               unsigned Depth) const {
  ObjectCostBenefit Out;
  // Definition 7: breadth-first reference tree of height Depth, cycles and
  // nodes deeper than Depth removed.
  std::unordered_map<uint64_t, unsigned> DepthOf;
  std::vector<uint64_t> Order;
  DepthOf[RootTag] = 0;
  Order.push_back(RootTag);
  for (size_t Head = 0; Head != Order.size(); ++Head) {
    uint64_t Tag = Order[Head];
    unsigned D = DepthOf[Tag];
    if (D >= Depth)
      continue;
    for (FieldSlot Slot : fieldsOf(Tag)) {
      for (uint64_t Child : G.refChildrenOf(HeapLoc{Tag, Slot})) {
        if (DepthOf.count(Child))
          continue; // Cycle / diamond: keep the first (shallowest) depth.
        DepthOf[Child] = D + 1;
        Order.push_back(Child);
      }
    }
  }
  Out.TreeObjects = Order.size();

  // Fields of objects at depth < n count (scalar fields always, reference
  // fields when a pointed-to object is inside the tree). 1-RAC is thus the
  // object's own fields; each extra level adds one ring of the structure.
  for (uint64_t Tag : Order) {
    if (DepthOf[Tag] >= Depth)
      continue;
    for (FieldSlot Slot : fieldsOf(Tag)) {
      HeapLoc L{Tag, Slot};
      // Reference fields count only when a pointed-to object is in the
      // tree as well (Definition 7); scalar fields always count.
      auto RC = G.refChildrenOf(L);
      if (!RC.empty()) {
        bool AnyChildInTree = false;
        for (uint64_t Child : RC) {
          if (DepthOf.count(Child)) {
            AnyChildInTree = true;
            break;
          }
        }
        if (!AnyChildInTree)
          continue;
      }
      LocCostBenefit CB = locCostBenefit(L);
      Out.NRac += CB.Rac;
      Out.NRab += CB.Rab;
      Out.ReachesPredicate |= CB.ReachesPredicate;
      Out.ReachesNative |= CB.ReachesNative;
      ++Out.FieldsCounted;
    }
  }
  return Out;
}
