//===- analysis/Optimizer.h - Profile-guided bloat removal -----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An automatic consumer of the analysis, realizing Section 1's remark
/// that the findings "provide useful insights for automatic code
/// optimization in compilers": stores whose every profiled instance is
/// ultimately dead (the D* set of Table 1(c)) are deleted, and the
/// computation that fed only them is swept up by an iterative
/// dead-code elimination.
///
/// The transformation is *profile-guided and speculative*: it is sound for
/// executions that exercise the same behaviour as the profile (the paper's
/// "representative runs" premise). Callers validate by re-running and
/// comparing observable output (the sink hash); the tests do exactly that
/// over the random program corpus.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_OPTIMIZER_H
#define LUD_ANALYSIS_OPTIMIZER_H

#include "analysis/DeadValues.h"

#include <memory>

namespace lud {

class Module;

struct OptimizerStats {
  /// Heap/static stores removed because all their instances were dead.
  size_t RemovedStores = 0;
  /// Pure value-producing instructions removed by the DCE sweep.
  size_t RemovedPure = 0;
  /// DCE rounds until fixpoint.
  unsigned Iterations = 0;
  size_t removedTotal() const { return RemovedStores + RemovedPure; }
};

struct OptimizeResult {
  std::unique_ptr<Module> M;
  OptimizerStats Stats;
};

/// Rewrites \p M without its profiled-dead stores (per \p DV over \p G)
/// and without the computation that only fed them. \p G and \p DV must
/// come from a whole-program profile of \p M (no phase masking), or dead
/// classifications would be partial.
OptimizeResult removeProfiledDeadCode(const Module &M, const FrozenGraph &G,
                                      const DeadValueAnalysis &DV);

/// Convenience for build-phase graphs: seals a copy of \p G first.
OptimizeResult removeProfiledDeadCode(const Module &M, const DepGraph &G,
                                      const DeadValueAnalysis &DV);

} // namespace lud

#endif // LUD_ANALYSIS_OPTIMIZER_H
