//===- analysis/MultiHop.h - Multi-hop relative costs ----------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-hop extension the paper sketches in Section 3.2 ("a different
/// way of handling this issue is to consider multiple hops when computing
/// costs and benefits"): k-hop relative cost/benefit generalize HRAC/HRAB
/// by letting the traversal cross up to k-1 heap boundaries. k = 1
/// degenerates to Definitions 5/6; larger k widens the inspected region of
/// the data flow, trading report explainability for reach — the trade-off
/// the paper proposes to study.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_MULTIHOP_H
#define LUD_ANALYSIS_MULTIHOP_H

#include "analysis/CostModel.h"

namespace lud {

/// k-hop heap-relative abstract cost: like Definition 5, but a path may
/// pass through up to \p Hops - 1 heap-reading nodes (each read continues
/// into the hop that produced that heap value). Hops >= 1.
uint64_t multiHopCost(const FrozenGraph &G, NodeId N, unsigned Hops);

/// k-hop dual of Definition 6: forward traversal crossing up to
/// \p Hops - 1 heap-writing nodes (each write continues into the hop that
/// consumes the written location).
BenefitInfo multiHopBenefit(const FrozenGraph &G, NodeId N, unsigned Hops);

/// RAC/RAB of one abstract heap location under k-hop traversal (means over
/// its writer/reader nodes, as in CostModel::locCostBenefit).
LocCostBenefit multiHopLocCostBenefit(const FrozenGraph &G, const HeapLoc &L,
                                      unsigned Hops);

} // namespace lud

#endif // LUD_ANALYSIS_MULTIHOP_H
