//===- analysis/Optimizer.cpp - Profile-guided bloat removal ---------------===//

#include "analysis/Optimizer.h"

#include "ir/Clone.h"
#include "ir/Module.h"

#include <vector>

using namespace lud;

namespace {

/// Appends the registers \p I reads to \p Out.
void usedRegs(const Instruction &I, std::vector<Reg> &Out) {
  switch (I.getKind()) {
  case Instruction::Kind::Const:
  case Instruction::Kind::Alloc:
  case Instruction::Kind::Br:
    break;
  case Instruction::Kind::Assign:
    Out.push_back(cast<AssignInst>(&I)->Src);
    break;
  case Instruction::Kind::Bin: {
    const auto *B = cast<BinInst>(&I);
    Out.push_back(B->Lhs);
    Out.push_back(B->Rhs);
    break;
  }
  case Instruction::Kind::Un:
    Out.push_back(cast<UnInst>(&I)->Src);
    break;
  case Instruction::Kind::AllocArray:
    Out.push_back(cast<AllocArrayInst>(&I)->Len);
    break;
  case Instruction::Kind::LoadField: {
    const auto *L = cast<LoadFieldInst>(&I);
    Out.push_back(L->Base);
    break;
  }
  case Instruction::Kind::StoreField: {
    const auto *S = cast<StoreFieldInst>(&I);
    Out.push_back(S->Base);
    Out.push_back(S->Src);
    break;
  }
  case Instruction::Kind::LoadStatic:
    break;
  case Instruction::Kind::StoreStatic:
    Out.push_back(cast<StoreStaticInst>(&I)->Src);
    break;
  case Instruction::Kind::LoadElem: {
    const auto *L = cast<LoadElemInst>(&I);
    Out.push_back(L->Base);
    Out.push_back(L->Index);
    break;
  }
  case Instruction::Kind::StoreElem: {
    const auto *S = cast<StoreElemInst>(&I);
    Out.push_back(S->Base);
    Out.push_back(S->Index);
    Out.push_back(S->Src);
    break;
  }
  case Instruction::Kind::ArrayLen:
    Out.push_back(cast<ArrayLenInst>(&I)->Base);
    break;
  case Instruction::Kind::Call:
    for (Reg A : cast<CallInst>(&I)->Args)
      Out.push_back(A);
    break;
  case Instruction::Kind::NativeCall:
    for (Reg A : cast<NativeCallInst>(&I)->Args)
      Out.push_back(A);
    break;
  case Instruction::Kind::CondBr: {
    const auto *C = cast<CondBrInst>(&I);
    Out.push_back(C->Lhs);
    Out.push_back(C->Rhs);
    break;
  }
  case Instruction::Kind::Return:
    if (cast<ReturnInst>(&I)->Src != kNoReg)
      Out.push_back(cast<ReturnInst>(&I)->Src);
    break;
  }
}

/// Destination register of a pure value-producing instruction that may be
/// dropped when its result is unused; kNoReg for everything else (calls
/// and consumers have effects and always stay).
Reg droppableDst(const Instruction &I) {
  switch (I.getKind()) {
  case Instruction::Kind::Const:
    return cast<ConstInst>(&I)->Dst;
  case Instruction::Kind::Assign:
    return cast<AssignInst>(&I)->Dst;
  case Instruction::Kind::Bin:
    return cast<BinInst>(&I)->Dst;
  case Instruction::Kind::Un:
    return cast<UnInst>(&I)->Dst;
  case Instruction::Kind::Alloc:
    return cast<AllocInst>(&I)->Dst;
  case Instruction::Kind::AllocArray:
    return cast<AllocArrayInst>(&I)->Dst;
  // Loads are pure value producers too; their only side effect is a
  // potential trap, which the profile showed does not fire.
  case Instruction::Kind::LoadField:
    return cast<LoadFieldInst>(&I)->Dst;
  case Instruction::Kind::LoadStatic:
    return cast<LoadStaticInst>(&I)->Dst;
  case Instruction::Kind::LoadElem:
    return cast<LoadElemInst>(&I)->Dst;
  case Instruction::Kind::ArrayLen:
    return cast<ArrayLenInst>(&I)->Dst;
  default:
    return kNoReg;
  }
}

} // namespace

OptimizeResult lud::removeProfiledDeadCode(const Module &M,
                                           const FrozenGraph &G,
                                           const DeadValueAnalysis &DV) {
  OptimizeResult Out;
  std::vector<bool> Kept(M.getNumInstrs(), true);

  // Per-instruction dead summary: executed, every node dead, and never
  // storing a reference. Reference stores build structure spine: under
  // thin slicing their values are deliberately outside value flow (base
  // pointers are not uses), so "dead" there does not mean removable.
  std::vector<bool> Executed(M.getNumInstrs(), false);
  std::vector<bool> AllDead(M.getNumInstrs(), true);
  std::vector<bool> StoredRef(M.getNumInstrs(), false);
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    InstrId I = G.instr(N);
    Executed[I] = true;
    if (!DV.Dead[N])
      AllDead[I] = false;
    if (G.storedRef(N))
      StoredRef[I] = true;
  }

  // Phase 1: drop heap/static stores whose every profiled instance fed
  // only dead values. Unexecuted code is left alone (no profile evidence).
  for (InstrId I = 0; I != M.getNumInstrs(); ++I) {
    const Instruction *Inst = M.getInstr(I);
    if (!Inst->writesHeap())
      continue;
    if (Executed[I] && AllDead[I] && !StoredRef[I]) {
      Kept[I] = false;
      ++Out.Stats.RemovedStores;
    }
  }

  // Phase 2: iterative DCE over the kept set — drop pure producers whose
  // destination register is read by no kept instruction of the function.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Out.Stats.Iterations;
    for (const auto &F : M.functions()) {
      // Registers read by kept instructions of F.
      std::vector<bool> Used(F->getNumRegs(), false);
      std::vector<Reg> Scratch;
      for (const auto &BB : F->blocks()) {
        for (const auto &I : BB->insts()) {
          if (!Kept[I->getId()])
            continue;
          Scratch.clear();
          usedRegs(*I, Scratch);
          for (Reg R : Scratch)
            if (R != kNoReg)
              Used[R] = true;
        }
      }
      for (const auto &BB : F->blocks()) {
        for (const auto &I : BB->insts()) {
          if (!Kept[I->getId()] || I->isTerminator())
            continue;
          Reg Dst = droppableDst(*I);
          if (Dst == kNoReg || Used[Dst])
            continue;
          Kept[I->getId()] = false;
          ++Out.Stats.RemovedPure;
          Changed = true;
        }
      }
    }
  }

  Out.M = cloneModule(
      M, [&](const Instruction &I) { return Kept[I.getId()]; });
  return Out;
}

OptimizeResult lud::removeProfiledDeadCode(const Module &M, const DepGraph &G,
                                           const DeadValueAnalysis &DV) {
  return removeProfiledDeadCode(M, FrozenGraph(G), DV);
}
