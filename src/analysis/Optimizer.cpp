//===- analysis/Optimizer.cpp - Profile-guided bloat removal ---------------===//

#include "analysis/Optimizer.h"

#include "ir/Clone.h"
#include "ir/Module.h"
#include "ir/Rewrite.h"

#include <vector>

using namespace lud;

OptimizeResult lud::removeProfiledDeadCode(const Module &M,
                                           const FrozenGraph &G,
                                           const DeadValueAnalysis &DV) {
  OptimizeResult Out;
  std::vector<bool> Kept(M.getNumInstrs(), true);

  // Per-instruction dead summary: executed, every node dead, and never
  // storing a reference. Reference stores build structure spine: under
  // thin slicing their values are deliberately outside value flow (base
  // pointers are not uses), so "dead" there does not mean removable.
  std::vector<bool> Executed(M.getNumInstrs(), false);
  std::vector<bool> AllDead(M.getNumInstrs(), true);
  std::vector<bool> StoredRef(M.getNumInstrs(), false);
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    InstrId I = G.instr(N);
    Executed[I] = true;
    if (!DV.Dead[N])
      AllDead[I] = false;
    if (G.storedRef(N))
      StoredRef[I] = true;
  }

  // Phase 1: drop heap/static stores whose every profiled instance fed
  // only dead values. Unexecuted code is left alone (no profile evidence).
  for (InstrId I = 0; I != M.getNumInstrs(); ++I) {
    const Instruction *Inst = M.getInstr(I);
    if (!Inst->writesHeap())
      continue;
    if (Executed[I] && AllDead[I] && !StoredRef[I]) {
      Kept[I] = false;
      ++Out.Stats.RemovedStores;
    }
  }

  // Phase 2: iterative DCE over the kept set — drop pure producers whose
  // destination register is read by no kept instruction of the function.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Out.Stats.Iterations;
    for (const auto &F : M.functions()) {
      // Registers read by kept instructions of F.
      std::vector<bool> Used(F->getNumRegs(), false);
      std::vector<Reg> Scratch;
      for (const auto &BB : F->blocks()) {
        for (const auto &I : BB->insts()) {
          if (!Kept[I->getId()])
            continue;
          Scratch.clear();
          appendUsedRegs(*I, Scratch);
          for (Reg R : Scratch)
            if (R != kNoReg)
              Used[R] = true;
        }
      }
      for (const auto &BB : F->blocks()) {
        for (const auto &I : BB->insts()) {
          if (!Kept[I->getId()] || I->isTerminator())
            continue;
          Reg Dst = pureProducerDst(*I);
          if (Dst == kNoReg || Used[Dst])
            continue;
          Kept[I->getId()] = false;
          ++Out.Stats.RemovedPure;
          Changed = true;
        }
      }
    }
  }

  Out.M = cloneModule(
      M, [&](const Instruction &I) { return Kept[I.getId()]; });
  return Out;
}

OptimizeResult lud::removeProfiledDeadCode(const Module &M, const DepGraph &G,
                                           const DeadValueAnalysis &DV) {
  return removeProfiledDeadCode(M, FrozenGraph(G), DV);
}
