//===- analysis/PassManager.h - Evidence-driven rewrite pipeline -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rewrite-pass pipeline: an automatic consumer of the analysis that
/// goes beyond deleting profiled-dead stores to *replacing* low-utility
/// data structures, closing the loop described in "Automated
/// Profile-Guided Replacement of Data Structures" (PAPERS.md). Each
/// RewritePass proposes one candidate module at a time from shared
/// PassEvidence (the sealed graph, the per-structure UsageSummary records,
/// the dead-value classification); the PassManager validates every
/// candidate against the original module's observables — run status, sink
/// hash, return value, on both execution engines — and either commits it
/// (re-profiling so later passes see fresh evidence) or rolls it back.
/// Every decision carries a machine-checkable rationale into the report.
///
/// The transformations are profile-guided and speculative exactly like
/// the dead-store deleter (analysis/Optimizer.h): sound for executions
/// exercising the profiled behaviour, enforced here by differential
/// validation and downstream by the fuzzer's `optimize` oracle mode.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_PASSMANAGER_H
#define LUD_ANALYSIS_PASSMANAGER_H

#include "analysis/Evidence.h"
#include "analysis/Optimizer.h"
#include "profiling/SlicingProfiler.h"
#include "runtime/Engine.h"
#include "runtime/Interpreter.h"

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace lud {

namespace obs {
class MetricsRegistry;
}

namespace opt {

/// Everything a pass may consult when proposing a rewrite. All pointers
/// borrow from the PassManager's current iteration state and are valid
/// only during next().
struct PassEvidence {
  const Module *M = nullptr;
  const FrozenGraph *G = nullptr;
  const UsageEvidence *Usage = nullptr;
  const DeadValueAnalysis *DV = nullptr;
  uint64_t ExecutedInstrs = 0;
  /// Stable target keys already proposed (applied *or* rolled back);
  /// passes must not re-propose them, or rollback would loop forever.
  const std::set<std::string> *Attempted = nullptr;
  /// Summed node frequency per static instruction (index InstrId).
  const std::vector<uint64_t> *InstrFreq = nullptr;
};

/// One proposed rewrite: the candidate module plus its audit trail.
struct RewriteCandidate {
  std::unique_ptr<Module> M;
  /// Stable identity of the rewritten structure — survives re-profiling
  /// (function names + ordinals, never raw InstrIds).
  std::string Target;
  /// Machine-checkable evidence line for the report: what was rewritten
  /// and the counter values that gated it.
  std::string Rationale;
  size_t RemovedStores = 0;
  size_t RemovedPure = 0;
  /// Instructions the rewrite replaced or synthesized.
  size_t RewrittenInstrs = 0;
};

/// A rewrite pass proposes candidates one at a time; the manager
/// validates, commits or rolls back, and calls next() again with
/// refreshed evidence until the pass returns nullopt.
class RewritePass {
public:
  virtual ~RewritePass();
  virtual const char *name() const = 0;
  virtual std::optional<RewriteCandidate> next(const PassEvidence &E) = 0;
};

/// The profiled-dead-store deleter re-homed as a pipeline pass (it runs
/// first, and once more last to sweep stores the structure rewrites
/// orphaned). \p Label distinguishes the two placements in stats.
std::unique_ptr<RewritePass> createDeadStorePass(const char *Label);
/// Linear map scans over build-once-read-many arrays become binary
/// searches over the (already sorted) data.
std::unique_ptr<RewritePass> createMapToArrayPass();
/// Clone-per-operation chains: hoists loop-invariant fresh-structure
/// call chains out of loops, then specializes clone-then-update callees
/// to update in place.
std::unique_ptr<RewritePass> createClonePerOpPass();
/// Memo tables whose values are read at most once: loads recompute the
/// value locally, leaving the table to the final dead-store sweep.
std::unique_ptr<RewritePass> createOnceReadMemoPass();

/// True for the pass names the default pipeline understands
/// ("dead-stores", "map-to-array", "clone-per-op", "once-read-memo",
/// "dead-stores-final") — CLI validation uses this.
bool isKnownPassName(const std::string &Name);

struct PassStats {
  size_t Applied = 0;
  size_t RolledBack = 0;
  size_t RemovedStores = 0;
  size_t RemovedPure = 0;
  size_t RewrittenInstrs = 0;
};

/// Audit record of one candidate's fate.
struct PassOutcome {
  std::string Pass;
  std::string Target;
  std::string Rationale;
  bool Applied = false;
  /// Why the candidate was rejected (empty when applied).
  std::string Reason;
};

struct PipelineOptions {
  EngineKind Engine = defaultEngineKind();
  SlicingConfig Slicing;
  RunConfig Run;
  /// Validate candidates on the other engine too (the oracle contract);
  /// disable only in tests probing single-engine behaviour.
  bool ValidateBothEngines = true;
  /// Pass names to run, in order. Empty = the default pipeline:
  /// dead-stores, map-to-array, clone-per-op, once-read-memo,
  /// dead-stores-final.
  std::vector<std::string> Passes;
  /// Ceiling on committed rewrites (each one re-profiles).
  size_t MaxApplications = 32;
};

struct PipelineResult {
  /// The rewritten module; null when no candidate survived validation.
  std::unique_ptr<Module> M;
  bool Changed = false;
  /// Aggregated legacy stats (dead-store passes feed these).
  OptimizerStats Stats;
  /// Per-pass stats in pipeline order.
  std::vector<std::pair<std::string, PassStats>> PerPass;
  /// Every candidate's fate, in decision order.
  std::vector<PassOutcome> Outcomes;
  uint64_t InstrsBefore = 0;
  uint64_t InstrsAfter = 0;
  uint64_t AllocsBefore = 0;
  uint64_t AllocsAfter = 0;
  /// Status of the reference run; passes only run when it Finished.
  RunStatus ReferenceStatus = RunStatus::Finished;

  size_t applied() const {
    size_t N = 0;
    for (const auto &[Name, S] : PerPass)
      N += S.Applied;
    return N;
  }
};

/// Drives the pipeline: profile, propose, validate, commit-or-rollback.
class PassManager {
public:
  explicit PassManager(PipelineOptions Opts = {});
  ~PassManager();

  void addPass(std::unique_ptr<RewritePass> P);
  /// Installs the default pipeline (or Opts.Passes when set). Unknown
  /// pass names are ignored by name resolution in Opts handling.
  void addDefaultPasses();

  /// Runs every pass over \p M. The input module is never mutated.
  PipelineResult run(const Module &M);

  /// Publishes opt.* counters/gauges for \p R into \p Reg
  /// (opt.removed_stores, opt.rewrites.<pass>, ... — lud.stats.v1).
  static void accountStats(const PipelineResult &R, obs::MetricsRegistry &Reg);

private:
  PipelineOptions Opts;
  std::vector<std::unique_ptr<RewritePass>> Passes;
};

/// Renders the "=== Optimizer ===" report section: per-pass stats and
/// every outcome's rationale.
void renderOptimizeReport(const PipelineResult &R, OutStream &OS);

} // namespace opt
} // namespace lud

#endif // LUD_ANALYSIS_PASSMANAGER_H
