//===- analysis/Clients.h - Section 3.2's auxiliary clients ----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The additional Gcost clients sketched in Section 3.2:
///   - overwrite ranking: heap locations re-written before being read (the
///     derby FileContainer case study);
///   - method-level costs: stack work to produce each method's return value
///     relative to its heap inputs;
///   - predicate constancy: branch conditions that always evaluate the same
///     way, with the cost of computing their operands (the bloat
///     Assert.isTrue and tomcat getProperty case studies).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_CLIENTS_H
#define LUD_ANALYSIS_CLIENTS_H

#include "analysis/CostModel.h"
#include "profiling/SlicingProfiler.h"

#include <string>
#include <vector>

namespace lud {

class Module;
class OutStream;

/// The one knob set shared by every Section 3.2 client. Callers configure
/// a single struct instead of threading loose thresholds through each
/// client's signature; the table printers for these rows live with the
/// other report sections in analysis/Report.h.
struct ClientOptions {
  /// Overwrite ranking: rows with fewer total writes drop as noise.
  uint64_t MinWrites = 2;
  /// Predicate constancy: minimum executions before a predicate counts.
  uint64_t MinCount = 2;
  /// Rows per printed table.
  size_t TopK = 15;
  /// Reference-tree height n (Definition 7) for the Gcost report run
  /// alongside the clients.
  unsigned Depth = 4;
};

//===----------------------------------------------------------------------===
// Overwrite ranking.
//===----------------------------------------------------------------------===

/// One abstract location aggregated over contexts, ranked by wasted writes.
struct OverwriteRow {
  AllocSiteId Site = kNoAllocSite; // kNoAllocSite for statics.
  GlobalId Global = kNoGlobal;     // set instead for statics.
  FieldSlot Slot = 0;
  std::string Description; // "new int[] @ derby_meta .ELM"
  uint64_t Writes = 0;
  uint64_t Reads = 0;
  uint64_t Overwrites = 0;
  /// Overwrites / Writes: fraction of stores no load ever observed.
  double WasteRatio = 0;
};

/// Locations sorted by overwrite count (then waste ratio). Rows with fewer
/// than Opts.MinWrites writes are dropped as noise.
std::vector<OverwriteRow> rankOverwrites(const SlicingProfiler &P,
                                         const Module &M,
                                         const ClientOptions &Opts = {});

/// Rank (0-based) of the first row matching \p Site, or -1.
int overwriteRankOf(const std::vector<OverwriteRow> &Rows, AllocSiteId Site);

//===----------------------------------------------------------------------===
// Method-level cost.
//===----------------------------------------------------------------------===

struct MethodCostRow {
  FuncId Func = kNoFunc;
  std::string Name;
  /// Total instruction instances executed in the method's own body
  /// (summed over all of its nodes; callees excluded).
  uint64_t OwnFreq = 0;
  /// Mean single-hop HRAC over the method's return nodes: the stack work
  /// to produce the return value from heap inputs (Section 3.2's
  /// "cost of producing the return value of a method relative to its
  /// inputs"). Zero for void methods.
  double ReturnCost = 0;
  uint64_t ReturnNodes = 0;
};

/// Per-method costs, sorted by ReturnCost descending.
std::vector<MethodCostRow> computeMethodCosts(const CostModel &CM,
                                              const Module &M);

//===----------------------------------------------------------------------===
// Predicate constancy.
//===----------------------------------------------------------------------===

struct ConstantPredicateRow {
  InstrId Instr = kNoInstr;
  NodeId Node = kNoNode;
  std::string Text; // "if r3 < r4 ... @ fop_guards"
  uint64_t Executions = 0;
  bool AlwaysTrue = false;
  /// Single-hop cost of computing the condition's operands.
  uint64_t OperandCost = 0;
};

/// Predicates that always took the same direction, executed at least
/// Opts.MinCount times; sorted by OperandCost * Executions descending.
std::vector<ConstantPredicateRow>
findConstantPredicates(const SlicingProfiler &P, const CostModel &CM,
                       const Module &M, const ClientOptions &Opts = {});

} // namespace lud

#endif // LUD_ANALYSIS_CLIENTS_H
