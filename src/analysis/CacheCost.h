//===- analysis/CacheCost.h - Cache-effectiveness analysis -----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache redefinition of cost and benefit the paper proposes as future
/// work (Sections 3.2 and 6): when a structure is *meant* to memoize, its
/// cost should count only the instructions that build the structure itself
/// (spine stores, allocation), not the computation of the cached values —
/// and its benefit is the recomputation work those values save, i.e. the
/// value-production cost times the number of reuses beyond the first.
///
///   SpineCost(site)   = alloc instances + store instances into the
///                       structure (the caching overhead)
///   CachedWork(field) = RAC of the field (work to produce one value)
///   SavedWork(field)  = CachedWork * max(reads - writes, 0)
///   Effectiveness     = sum SavedWork / SpineCost
///
/// Structures with effectiveness < 1 pay more to cache than they save: the
/// "inappropriately-used caches" the paper wants surfaced.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_CACHECOST_H
#define LUD_ANALYSIS_CACHECOST_H

#include "analysis/CostModel.h"
#include "ir/Ids.h"

#include <string>
#include <vector>

namespace lud {

class Module;
class OutStream;

struct CacheScore {
  AllocSiteId Site = kNoAllocSite;
  std::string Description;
  /// Instances spent building/maintaining the structure itself.
  double SpineCost = 0;
  /// Recomputation work saved by reads beyond the first per value.
  double SavedWork = 0;
  /// SavedWork / SpineCost; < 1 means the cache costs more than it saves.
  double Effectiveness = 0;
  uint64_t Writes = 0;
  uint64_t Reads = 0;
};

struct CacheOptions {
  /// Ignore sites with fewer stores than this (too small to judge).
  uint64_t MinWrites = 4;
};

/// Scores every allocation site as if it were a cache, least effective
/// first. Use together with the low-utility report: a structure that is
/// cheap by Definition 5 but scores badly here is a bad memoization
/// choice.
std::vector<CacheScore> rankCacheEffectiveness(const CostModel &CM,
                                               const Module &M,
                                               CacheOptions Opts = {});

/// Prints the top \p TopK rows.
void printCacheScores(const std::vector<CacheScore> &Rows, OutStream &OS,
                      size_t TopK = 10);

} // namespace lud

#endif // LUD_ANALYSIS_CACHECOST_H
