//===- analysis/DeadValues.h - Ultimately-dead value metrics ---*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bloat measurement of Table 1(c): D is the set of non-consumer sink
/// nodes, D* the nodes that can lead only to D (equivalently: that reach no
/// consumer), P* the nodes whose values end up only in predicates. IPD/IPP
/// weight D*/P* by execution frequency against the total instruction
/// instances I; NLD is |D*| over the node count.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_DEADVALUES_H
#define LUD_ANALYSIS_DEADVALUES_H

#include "profiling/FrozenGraph.h"

#include <vector>

namespace lud {

struct BloatMetrics {
  /// Total executed instruction instances (the paper's I column).
  uint64_t TotalInstrInstances = 0;
  /// Sum of frequencies over D* (instances producing only dead values).
  uint64_t DeadFreq = 0;
  /// Sum of frequencies over P* (instances producing predicate-only data).
  uint64_t PredOnlyFreq = 0;
  size_t DeadNodes = 0;
  size_t TotalNodes = 0;

  /// Table 1(c) IPD: fraction of instruction instances (transitively)
  /// producing ultimately-dead values.
  double ipd() const {
    return TotalInstrInstances ? double(DeadFreq) / double(TotalInstrInstances)
                               : 0;
  }
  /// Table 1(c) IPP: fraction producing values that end up only in
  /// predicates.
  double ipp() const {
    return TotalInstrInstances
               ? double(PredOnlyFreq) / double(TotalInstrInstances)
               : 0;
  }
  /// Table 1(c) NLD: fraction of graph nodes that are ultimately dead.
  double nld() const {
    return TotalNodes ? double(DeadNodes) / double(TotalNodes) : 0;
  }
};

/// Per-node dead/predicate-only classification plus the aggregate metrics.
struct DeadValueAnalysis {
  BloatMetrics Metrics;
  /// Node is in D*: no forward path reaches any consumer.
  std::vector<bool> Dead;
  /// Node is in P*: reaches a predicate, never a native, never a dead sink.
  std::vector<bool> PredicateOnly;
};

/// Runs the analysis over a sealed graph. \p ExecutedInstrs is the run's
/// instruction count (RunResult::ExecutedInstrs). The sweep touches only
/// the meta and frequency columns plus CSR In edges. Dead/PredicateOnly
/// are indexed by NodeId, which sealing preserves.
DeadValueAnalysis computeDeadValues(const FrozenGraph &G,
                                    uint64_t ExecutedInstrs);

/// Convenience for build-phase graphs: seals a copy and runs the analysis
/// on it (identical classification — node ids survive sealing).
DeadValueAnalysis computeDeadValues(const DepGraph &G,
                                    uint64_t ExecutedInstrs);

} // namespace lud

#endif // LUD_ANALYSIS_DEADVALUES_H
