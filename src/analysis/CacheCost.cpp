//===- analysis/CacheCost.cpp - Cache-effectiveness analysis ---------------===//

#include "analysis/CacheCost.h"

#include "ir/Module.h"
#include "support/OutStream.h"

#include <algorithm>
#include <map>

using namespace lud;

std::vector<CacheScore> lud::rankCacheEffectiveness(const CostModel &CM,
                                                    const Module &M,
                                                    CacheOptions Opts) {
  const FrozenGraph &G = CM.graph();
  std::map<AllocSiteId, CacheScore> BySite;

  for (uint64_t Tag : CM.allTags()) {
    if (FrozenGraph::isStaticTag(Tag))
      continue;
    AllocSiteId Site = G.tagSite(Tag);
    CacheScore &S = BySite[Site];
    if (S.Site == kNoAllocSite) {
      S.Site = Site;
      S.Description = M.describeAllocSite(Site);
    }
    // Spine: the allocation instances themselves...
    NodeId Alloc = G.allocNodeFor(Tag);
    if (Alloc != kNoNode)
      S.SpineCost += double(G.freq(Alloc));

    for (FieldSlot Slot : CM.fieldsOf(Tag)) {
      HeapLoc L{Tag, Slot};
      uint64_t Writes = 0, Reads = 0;
      for (NodeId W : G.writersOf(L))
        Writes += G.freq(W);
      for (NodeId R : G.readersOf(L))
        Reads += G.freq(R);
      S.Writes += Writes;
      S.Reads += Reads;
      // ...plus the store instances maintaining it (one instance each;
      // the *value* computation is deliberately excluded).
      S.SpineCost += double(Writes);
      // Work one cached value costs to produce, excluding the store
      // instance itself.
      LocCostBenefit CB = CM.locCostBenefit(L);
      double CachedWork = std::max(CB.Rac - 1.0, 0.0);
      if (Reads > Writes)
        S.SavedWork += CachedWork * double(Reads - Writes);
    }
  }

  std::vector<CacheScore> Rows;
  for (auto &[Site, S] : BySite) {
    if (S.Writes < Opts.MinWrites)
      continue;
    S.Effectiveness = S.SpineCost > 0 ? S.SavedWork / S.SpineCost : 0;
    Rows.push_back(std::move(S));
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const CacheScore &A, const CacheScore &B) {
              if (A.Effectiveness != B.Effectiveness)
                return A.Effectiveness < B.Effectiveness;
              if (A.SpineCost != B.SpineCost)
                return A.SpineCost > B.SpineCost;
              return A.Site < B.Site;
            });
  return Rows;
}

void lud::printCacheScores(const std::vector<CacheScore> &Rows,
                           OutStream &OS, size_t TopK) {
  OS << "rank  effect      spine      saved   writes    reads  "
        "structure\n";
  size_t Limit = std::min(TopK, Rows.size());
  for (size_t I = 0; I != Limit; ++I) {
    const CacheScore &S = Rows[I];
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%4zu  %6.2f %10.1f %10.1f %8llu %8llu",
                  I + 1, S.Effectiveness, S.SpineCost, S.SavedWork,
                  (unsigned long long)S.Writes, (unsigned long long)S.Reads);
    OS << Buf << "  " << S.Description << "\n";
  }
}
