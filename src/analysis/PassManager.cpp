//===- analysis/PassManager.cpp - Evidence-driven rewrite pipeline ---------===//

#include "analysis/PassManager.h"

#include "ir/Module.h"
#include "obs/Metrics.h"
#include "runtime/ComposedProfiler.h"
#include "runtime/ThreadedEngine.h"
#include "support/OutStream.h"

#include <cstring>

using namespace lud;
using namespace lud::opt;

RewritePass::~RewritePass() = default;

namespace {

const char *statusName(RunStatus S) {
  switch (S) {
  case RunStatus::Finished:
    return "finished";
  case RunStatus::Trapped:
    return "trapped";
  case RunStatus::BudgetExceeded:
    return "budget-exceeded";
  }
  return "unknown";
}

/// Uninstrumented run — the observable behaviour a rewrite must preserve.
RunResult plainRun(const Module &M, EngineKind E, const RunConfig &RC) {
  Heap H;
  ComposedProfiler<> P;
  return runWithEngine(E, M, H, P, RC);
}

/// Bit pattern of a return value for exact comparison (floats compare
/// bitwise: validation wants identity, not numeric equivalence).
uint64_t valueBits(const Value &V) {
  switch (V.Kind) {
  case ValueKind::Int:
    return uint64_t(V.I);
  case ValueKind::Float: {
    uint64_t B;
    std::memcpy(&B, &V.F, sizeof B);
    return B;
  }
  case ValueKind::Ref:
    return V.R;
  }
  return 0;
}

/// The differential-oracle observable contract (fuzz/Oracle.h): status,
/// sink hash, and the returned value must survive the rewrite.
bool sameObservables(const RunResult &Ref, const RunResult &Got,
                     const char *Engine, std::string &Why) {
  if (Got.Status != Ref.Status) {
    Why = std::string("status diverged on ") + Engine + " (" +
          statusName(Ref.Status) + " -> " + statusName(Got.Status) + ")";
    return false;
  }
  if (Got.SinkHash != Ref.SinkHash) {
    Why = std::string("sink hash diverged on ") + Engine;
    return false;
  }
  if (Got.ReturnValue.Kind != Ref.ReturnValue.Kind ||
      valueBits(Got.ReturnValue) != valueBits(Ref.ReturnValue)) {
    Why = std::string("return value diverged on ") + Engine;
    return false;
  }
  return true;
}

/// One profiled snapshot of the current module: the evidence every pass
/// reads. Rebuilt after each committed rewrite so later proposals see
/// the structure landscape they actually face.
struct ProfileState {
  FrozenGraph G;
  HeapLocMap<LocationActivity> Activity;
  DeadValueAnalysis DV;
  UsageEvidence Usage;
  std::vector<uint64_t> InstrFreq;
  RunResult Run;
};

ProfileState profileModule(const Module &M, const PipelineOptions &Opts) {
  ProfileState P;
  Heap H;
  SlicingProfiler SP(Opts.Slicing);
  RunConfig RC = Opts.Run;
  RC.PrintStream = nullptr;
  P.Run = runWithEngine(Opts.Engine, M, H, SP, RC);
  P.G = FrozenGraph(SP.graph());
  P.Activity = SP.locationActivity();
  P.DV = computeDeadValues(P.G, P.Run.ExecutedInstrs);
  P.Usage = summarizeUsage(M, P.G, P.Activity, &P.DV);
  P.InstrFreq.assign(M.getNumInstrs(), 0);
  for (size_t N = 0; N != P.G.numNodes(); ++N)
    P.InstrFreq[P.G.instr(NodeId(N))] += P.G.freq(NodeId(N));
  return P;
}

} // namespace

bool lud::opt::isKnownPassName(const std::string &Name) {
  return Name == "dead-stores" || Name == "map-to-array" ||
         Name == "clone-per-op" || Name == "once-read-memo" ||
         Name == "dead-stores-final";
}

PassManager::PassManager(PipelineOptions Opts) : Opts(std::move(Opts)) {}

PassManager::~PassManager() = default;

void PassManager::addPass(std::unique_ptr<RewritePass> P) {
  Passes.push_back(std::move(P));
}

void PassManager::addDefaultPasses() {
  auto AddByName = [&](const std::string &Name) {
    if (Name == "dead-stores")
      addPass(createDeadStorePass("dead-stores"));
    else if (Name == "map-to-array")
      addPass(createMapToArrayPass());
    else if (Name == "clone-per-op")
      addPass(createClonePerOpPass());
    else if (Name == "once-read-memo")
      addPass(createOnceReadMemoPass());
    else if (Name == "dead-stores-final")
      addPass(createDeadStorePass("dead-stores-final"));
  };
  if (!Opts.Passes.empty()) {
    for (const std::string &Name : Opts.Passes)
      AddByName(Name);
    return;
  }
  // Dead-store deletion runs first (rewrites then face less noise) and
  // once more last to sweep the stores the structure rewrites orphaned.
  addPass(createDeadStorePass("dead-stores"));
  addPass(createMapToArrayPass());
  addPass(createClonePerOpPass());
  addPass(createOnceReadMemoPass());
  addPass(createDeadStorePass("dead-stores-final"));
}

PipelineResult PassManager::run(const Module &M) {
  PipelineResult R;
  if (Passes.empty())
    addDefaultPasses();

  RunConfig RefCfg = Opts.Run;
  RefCfg.PrintStream = nullptr;
  RunResult Ref = plainRun(M, Opts.Engine, RefCfg);
  R.ReferenceStatus = Ref.Status;
  R.InstrsBefore = R.InstrsAfter = Ref.ExecutedInstrs;
  R.AllocsBefore = R.AllocsAfter = Ref.ObjectsAllocated;
  for (const auto &P : Passes)
    R.PerPass.emplace_back(P->name(), PassStats{});
  // A trapped or budget-capped reference run gives no baseline to
  // validate rewrites against; leave the module alone.
  if (Ref.Status != RunStatus::Finished)
    return R;

  EngineKind Other = Opts.Engine == EngineKind::Interp ? EngineKind::Threaded
                                                       : EngineKind::Interp;

  // Candidate runs get a hard budget: a rewrite that quadruples the work
  // (or loops) is broken regardless of what it would eventually output.
  RunConfig ValCfg = RefCfg;
  uint64_t Guard = Ref.ExecutedInstrs < (~uint64_t(0) >> 3)
                       ? Ref.ExecutedInstrs * 4 + 10000
                       : ~uint64_t(0);
  if (Guard < ValCfg.MaxInstructions)
    ValCfg.MaxInstructions = Guard;

  ProfileState P = profileModule(M, Opts);
  std::unique_ptr<Module> Owned;
  const Module *Cur = &M;
  std::set<std::string> Attempted;
  size_t Applications = 0;

  for (size_t PI = 0;
       PI != Passes.size() && Applications < Opts.MaxApplications; ++PI) {
    RewritePass &Pass = *Passes[PI];
    PassStats &PS = R.PerPass[PI].second;
    while (Applications < Opts.MaxApplications) {
      PassEvidence E;
      E.M = Cur;
      E.G = &P.G;
      E.Usage = &P.Usage;
      E.DV = &P.DV;
      E.ExecutedInstrs = P.Run.ExecutedInstrs;
      E.Attempted = &Attempted;
      E.InstrFreq = &P.InstrFreq;
      std::optional<RewriteCandidate> Cand = Pass.next(E);
      if (!Cand)
        break;
      Attempted.insert(Cand->Target);

      PassOutcome O;
      O.Pass = Pass.name();
      O.Target = Cand->Target;
      O.Rationale = Cand->Rationale;

      std::string Why;
      RunResult A = plainRun(*Cand->M, Opts.Engine, ValCfg);
      bool OK = sameObservables(Ref, A, engineKindName(Opts.Engine), Why);
      if (OK && Opts.ValidateBothEngines)
        OK = sameObservables(Ref, plainRun(*Cand->M, Other, ValCfg),
                             engineKindName(Other), Why);
      if (!OK) {
        O.Reason = Why;
        ++PS.RolledBack;
        R.Outcomes.push_back(std::move(O));
        continue;
      }

      O.Applied = true;
      ++PS.Applied;
      PS.RemovedStores += Cand->RemovedStores;
      PS.RemovedPure += Cand->RemovedPure;
      PS.RewrittenInstrs += Cand->RewrittenInstrs;
      R.Stats.RemovedStores += Cand->RemovedStores;
      R.Stats.RemovedPure += Cand->RemovedPure;
      R.Outcomes.push_back(std::move(O));
      Owned = std::move(Cand->M);
      Cur = Owned.get();
      R.InstrsAfter = A.ExecutedInstrs;
      R.AllocsAfter = A.ObjectsAllocated;
      ++Applications;
      if (Applications >= Opts.MaxApplications)
        break;
      P = profileModule(*Cur, Opts);
    }
  }

  R.Changed = Applications != 0;
  R.Stats.Iterations = unsigned(Applications);
  R.M = std::move(Owned);
  return R;
}

namespace {

/// Metric names stay in lud.stats.v1's snake_case vocabulary.
std::string metricName(const std::string &Pass) {
  std::string Out = "opt.rewrites.";
  for (char C : Pass)
    Out += C == '-' ? '_' : C;
  return Out;
}

} // namespace

void PassManager::accountStats(const PipelineResult &R,
                               obs::MetricsRegistry &Reg) {
  Reg.add(Reg.counter("opt.removed_stores"), R.Stats.RemovedStores);
  Reg.add(Reg.counter("opt.removed_pure"), R.Stats.RemovedPure);
  size_t Applied = 0, Rolled = 0;
  for (const auto &[Name, S] : R.PerPass) {
    Applied += S.Applied;
    Rolled += S.RolledBack;
    Reg.add(Reg.counter(metricName(Name)), S.Applied);
  }
  Reg.add(Reg.counter("opt.passes_applied"), Applied);
  Reg.add(Reg.counter("opt.passes_rolled_back"), Rolled);
  Reg.set(Reg.gauge("opt.executed_before"), R.InstrsBefore);
  Reg.set(Reg.gauge("opt.executed_after"), R.InstrsAfter);
  Reg.set(Reg.gauge("opt.allocs_before"), R.AllocsBefore);
  Reg.set(Reg.gauge("opt.allocs_after"), R.AllocsAfter);
}

void lud::opt::renderOptimizeReport(const PipelineResult &R, OutStream &OS) {
  OS << "=== Optimizer ===\n";
  OS << "reference: status=" << statusName(R.ReferenceStatus)
     << " instrs=" << R.InstrsBefore << " allocs=" << R.AllocsBefore << "\n";
  for (const auto &[Name, S] : R.PerPass) {
    OS << "pass " << Name << ": applied=" << uint64_t(S.Applied)
       << " rolled-back=" << uint64_t(S.RolledBack);
    if (S.RemovedStores || S.RemovedPure)
      OS << " removed-stores=" << uint64_t(S.RemovedStores)
         << " removed-pure=" << uint64_t(S.RemovedPure);
    if (S.RewrittenInstrs)
      OS << " rewritten=" << uint64_t(S.RewrittenInstrs);
    OS << "\n";
  }
  for (const PassOutcome &O : R.Outcomes) {
    if (O.Applied)
      OS << "[applied] ";
    else
      OS << "[rolled-back: " << O.Reason << "] ";
    OS << O.Pass << " " << O.Target << ": " << O.Rationale << "\n";
  }
  if (R.Changed) {
    OS << "executed instrs: " << R.InstrsBefore << " -> " << R.InstrsAfter;
    if (R.InstrsBefore && R.InstrsAfter <= R.InstrsBefore) {
      double Saved = 100.0 * double(R.InstrsBefore - R.InstrsAfter) /
                     double(R.InstrsBefore);
      OS << " (";
      OS.printFixed(Saved, 1);
      OS << "% saved)";
    }
    OS << "\n";
    OS << "allocations: " << R.AllocsBefore << " -> " << R.AllocsAfter
       << "\n";
  } else {
    OS << "no rewrites applied\n";
  }
}
