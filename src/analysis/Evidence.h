//===- analysis/Evidence.h - Per-structure usage evidence ------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared evidence layer of the rewrite-pass pipeline: folds the
/// cost-benefit model (Definitions 5-7), the overwrite counters (Section
/// 3.2), the dead-value classification (Table 1(c)) and the
/// cache-effectiveness scores into one per-structure UsageSummary record.
/// Each allocation site (and each static) gets its lifecycle totals —
/// build/read/overwrite phase counters, the read-after-last-write tail,
/// clone-per-op instance signatures — plus a coarse UsageKind
/// classification the rewrite passes gate on (docs/OPTIMIZER.md lists the
/// thresholds). The classification is *evidence*, not a proof: passes that
/// act on it must still validate the rewritten module output-preserving.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_EVIDENCE_H
#define LUD_ANALYSIS_EVIDENCE_H

#include "analysis/DeadValues.h"
#include "profiling/PhaseSummary.h"

#include <string>
#include <vector>

namespace lud {

class Module;

/// Coarse lifecycle classification of one data structure.
enum class UsageKind : uint8_t {
  /// Written but never read — pure bloat (Table 1(c)'s D* shape).
  WriteOnly,
  /// Each value read at most about once: a memo table that never pays
  /// for itself (sunflow's bits cache).
  OnceRead,
  /// Most stores clobber values nothing observed (derby's metadata map,
  /// Section 3.2's rewritten-before-read pattern).
  OverwriteDominated,
  /// A build phase followed by a read-mostly phase: a candidate for a
  /// sorted-array representation (derby's page index).
  BuildOnceReadMany,
  /// Many short-lived instances with paired write/read volumes: the
  /// clone-per-operation accumulator shape (sunflow's Matrix chain).
  ClonePerOp,
  /// No dominant pattern, or too little evidence to say.
  Balanced,
};

/// Printable name ("once-read", "build-once-read-many", ...).
const char *usageKindName(UsageKind K);

/// Lifecycle evidence for one structure: an allocation site or a static.
struct UsageSummary {
  bool IsStatic = false;
  AllocSiteId Site = kNoAllocSite;
  GlobalId Global = kNoGlobal;
  /// Human-readable anchor ("new Matrix @ su.render", "static de_meta").
  std::string Description;
  /// Objects allocated at the site (sum of allocation-node frequencies).
  uint64_t Instances = 0;
  /// Abstract heap locations the structure contributed.
  uint64_t Locs = 0;
  uint64_t Writes = 0;
  uint64_t Reads = 0;
  /// Stores that clobbered a value no load observed.
  uint64_t Overwrites = 0;
  /// Reads after each location's final write (the read-only tail).
  uint64_t ReadsAfterLastWrite = 0;
  /// Instances of writers whose every profiled value was ultimately dead.
  uint64_t DeadWriteFreq = 0;
  /// n-RAC / n-RAB over the reference tree (Definition 7, depth 4).
  double Cost = 0;
  double Benefit = 0;
  /// SavedWork / SpineCost when scored as a cache; -1 when unscored
  /// (below the CacheOptions::MinWrites floor).
  double CacheEffectiveness = -1;
  UsageKind Kind = UsageKind::Balanced;
};

/// Evidence for every structure of one profiled run.
struct UsageEvidence {
  /// Indexed by AllocSiteId (dense; unexecuted sites stay zeroed).
  std::vector<UsageSummary> Sites;
  /// Indexed by GlobalId.
  std::vector<UsageSummary> Statics;

  const UsageSummary *bySite(AllocSiteId S) const {
    return S < Sites.size() ? &Sites[S] : nullptr;
  }
};

/// Folds the profile clients over \p G into per-structure records. \p
/// Activity is the substrate's location-activity map for the same run;
/// \p DV is optional (DeadWriteFreq stays 0 without it). \p G and \p
/// Activity must come from a whole-program profile of \p M.
UsageEvidence summarizeUsage(const Module &M, const FrozenGraph &G,
                             const HeapLocMap<LocationActivity> &Activity,
                             const DeadValueAnalysis *DV = nullptr);

} // namespace lud

#endif // LUD_ANALYSIS_EVIDENCE_H
