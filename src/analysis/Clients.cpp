//===- analysis/Clients.cpp - Section 3.2's auxiliary clients --------------===//

#include "analysis/Clients.h"

#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/OutStream.h"

#include <algorithm>
#include <map>

using namespace lud;

std::vector<OverwriteRow> lud::rankOverwrites(const SlicingProfiler &P,
                                              const Module &M,
                                              const ClientOptions &Opts) {
  const DepGraph &G = P.graph();
  // Aggregate per (site-or-global, slot) over context-annotated tags.
  std::map<std::pair<uint64_t, FieldSlot>, OverwriteRow> Agg;
  for (const auto &[Loc, Act] : P.locationActivity()) {
    uint64_t Key;
    OverwriteRow Proto;
    if (DepGraph::isStaticTag(Loc.Tag)) {
      Proto.Global = GlobalId(Loc.Tag - kStaticTagBase);
      Proto.Description = "static @" + M.globals()[Proto.Global].Name;
      Key = Loc.Tag;
    } else {
      Proto.Site = G.tagSite(Loc.Tag);
      const Instruction *AI = M.getAllocSite(Proto.Site);
      ClassId Cls = kNoClass;
      if (const auto *A = dyn_cast<AllocInst>(AI))
        Cls = A->Class;
      std::string FieldName;
      if (Loc.Slot == kElemSlot)
        FieldName = "ELM";
      else if (Loc.Slot == kLenSlot)
        FieldName = "length";
      else if (Cls != kNoClass)
        FieldName = M.fieldName(Cls, Loc.Slot);
      else
        FieldName = "<slot" + std::to_string(Loc.Slot) + ">";
      Proto.Description =
          M.describeAllocSite(Proto.Site) + " ." + FieldName;
      Key = Proto.Site;
    }
    Proto.Slot = Loc.Slot;
    OverwriteRow &Row = Agg.try_emplace({Key, Loc.Slot}, Proto).first->second;
    Row.Writes += Act.Writes;
    Row.Reads += Act.Reads;
    Row.Overwrites += Act.Overwrites;
  }

  std::vector<OverwriteRow> Rows;
  for (auto &[Key, Row] : Agg) {
    if (Row.Writes < Opts.MinWrites)
      continue;
    Row.WasteRatio = Row.Writes ? double(Row.Overwrites) / double(Row.Writes)
                                : 0;
    Rows.push_back(std::move(Row));
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const OverwriteRow &A, const OverwriteRow &B) {
              if (A.Overwrites != B.Overwrites)
                return A.Overwrites > B.Overwrites;
              if (A.WasteRatio != B.WasteRatio)
                return A.WasteRatio > B.WasteRatio;
              return A.Description < B.Description;
            });
  return Rows;
}

int lud::overwriteRankOf(const std::vector<OverwriteRow> &Rows,
                         AllocSiteId Site) {
  for (size_t I = 0; I != Rows.size(); ++I)
    if (Rows[I].Site == Site)
      return int(I);
  return -1;
}

std::vector<MethodCostRow> lud::computeMethodCosts(const CostModel &CM,
                                                   const Module &M) {
  const FrozenGraph &G = CM.graph();
  std::map<FuncId, MethodCostRow> Agg;
  std::map<FuncId, uint64_t> RetHracSum;
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    InstrId Instr = G.instr(N);
    const Instruction *I = M.getInstr(Instr);
    FuncId F = M.getInstrFunction(Instr)->getId();
    MethodCostRow &Row = Agg[F];
    if (Row.Func == kNoFunc) {
      Row.Func = F;
      Row.Name = M.getFunction(F)->getName();
    }
    Row.OwnFreq += G.freq(N);
    if (isa<ReturnInst>(I)) {
      RetHracSum[F] += CM.hrac(N);
      ++Row.ReturnNodes;
    }
  }
  std::vector<MethodCostRow> Rows;
  for (auto &[F, Row] : Agg) {
    if (Row.ReturnNodes)
      Row.ReturnCost = double(RetHracSum[F]) / double(Row.ReturnNodes);
    Rows.push_back(std::move(Row));
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const MethodCostRow &A, const MethodCostRow &B) {
              if (A.ReturnCost != B.ReturnCost)
                return A.ReturnCost > B.ReturnCost;
              return A.OwnFreq > B.OwnFreq;
            });
  return Rows;
}

std::vector<ConstantPredicateRow>
lud::findConstantPredicates(const SlicingProfiler &P, const CostModel &CM,
                            const Module &M, const ClientOptions &Opts) {
  std::vector<ConstantPredicateRow> Rows;
  for (const auto &[Node, Outcome] : P.predicateOutcomes()) {
    uint64_t Total = Outcome.TakenCount + Outcome.NotTakenCount;
    if (Total < Opts.MinCount)
      continue;
    if (Outcome.TakenCount != 0 && Outcome.NotTakenCount != 0)
      continue;
    ConstantPredicateRow Row;
    Row.Node = Node;
    Row.Instr = CM.graph().instr(Node);
    Row.Executions = Total;
    Row.AlwaysTrue = Outcome.TakenCount != 0;
    Row.OperandCost = CM.hrac(Node);
    Row.Text = instToString(M, *M.getInstr(Row.Instr)) + " @ " +
               M.getInstrFunction(Row.Instr)->getName();
    Rows.push_back(std::move(Row));
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const ConstantPredicateRow &A, const ConstantPredicateRow &B) {
              double WA = double(A.OperandCost) * double(A.Executions);
              double WB = double(B.OperandCost) * double(B.Executions);
              if (WA != WB)
                return WA > WB;
              return A.Instr < B.Instr;
            });
  return Rows;
}
