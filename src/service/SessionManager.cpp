//===- service/SessionManager.cpp - Streaming session lifecycle ------------===//

#include "service/SessionManager.h"

#include "obs/PhaseTimer.h"
#include "support/OutStream.h"
#include "trace/TraceIO.h"

#include <cerrno>
#include <cstring>
#include <numeric>

using namespace lud;
using namespace lud::serve;

const char *lud::serve::sessionStateName(SessionState S) {
  switch (S) {
  case SessionState::Open:
    return "open";
  case SessionState::Draining:
    return "draining";
  case SessionState::Closed:
    return "closed";
  case SessionState::Failed:
    return "failed";
  case SessionState::Evicted:
    return "evicted";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// SessionHandle
//===----------------------------------------------------------------------===//

SessionState SessionHandle::state() const {
  std::lock_guard<std::mutex> Lock(Mgr.Mu);
  return St;
}

std::string SessionHandle::error() const {
  std::lock_guard<std::mutex> Lock(Mgr.Mu);
  return Diag;
}

uint64_t SessionHandle::bytesFed() const {
  std::lock_guard<std::mutex> Lock(Mgr.Mu);
  return Bytes;
}

uint64_t SessionHandle::events() const {
  std::lock_guard<std::mutex> Lock(Mgr.Mu);
  return Events;
}

uint64_t SessionHandle::segments() const {
  std::lock_guard<std::mutex> Lock(Mgr.Mu);
  return Segments;
}

bool SessionHandle::feed(std::string InBytes, std::string &Err) {
  std::unique_lock<std::mutex> Lock(Mgr.Mu);
  // Backpressure: block while the session's backlog is at the watermark.
  // The chunk still queues whole once the backlog drains, so a single
  // oversized segment cannot wedge its stream.
  Mgr.CV.wait(Lock, [&] {
    return St != SessionState::Open ||
           PendingBytes < Mgr.Limits.MaxPendingBytes || Mgr.ShuttingDown;
  });
  if (Mgr.ShuttingDown && St == SessionState::Open) {
    Err = "service shutting down";
    return false;
  }
  if (St != SessionState::Open) {
    // An earlier chunk may already have failed the session on the drain
    // thread; hand the caller the latched diagnostic.
    Err = Diag.empty() ? std::string("session is ") + sessionStateName(St)
                       : Diag;
    return false;
  }
  if (Bytes + InBytes.size() > Mgr.Limits.MaxSessionBytes) {
    Mgr.failLocked(*this, SessionState::Failed,
                   "session quota exceeded (" +
                       std::to_string(Bytes + InBytes.size()) + " > " +
                       std::to_string(Mgr.Limits.MaxSessionBytes) +
                       " bytes)");
    Err = Diag;
    return false;
  }
  Bytes += InBytes.size();
  PendingBytes += InBytes.size();
  Pending.push_back(std::move(InBytes));
  LastTouch = std::chrono::steady_clock::now();
  Mgr.bump("serve.chunks_fed");
  Mgr.scheduleDrainLocked(*this);
  return true;
}

bool SessionHandle::finish(std::string &Err) {
  std::unique_lock<std::mutex> Lock(Mgr.Mu);
  if (St == SessionState::Open) {
    LastTouch = std::chrono::steady_clock::now();
    St = SessionState::Draining;
    // Invariant: a non-empty queue always has a drain job in flight, so a
    // quiet session can close right here; otherwise the drain job closes
    // it when the queue empties.
    if (!JobActive && Pending.empty()) {
      St = SessionState::Closed;
      Mgr.bump("serve.sessions_closed");
      Mgr.CV.notify_all();
    } else if (!JobActive) {
      Mgr.scheduleDrainLocked(*this);
    }
  }
  Mgr.CV.wait(Lock, [&] {
    return (St != SessionState::Open && St != SessionState::Draining) ||
           Mgr.ShuttingDown;
  });
  if (St == SessionState::Closed)
    return true;
  Err = (St == SessionState::Open || St == SessionState::Draining)
            ? "service shutting down"
            : Diag;
  return false;
}

//===----------------------------------------------------------------------===//
// SessionManager
//===----------------------------------------------------------------------===//

SessionManager::SessionManager(const Module &M, SessionConfig BaseIn,
                               SessionLimits LimitsIn, unsigned Workers)
    : Mod(M), Base(std::move(BaseIn)), Limits(LimitsIn), Pool(Workers) {
  // Streamed sessions are already the recording; a replaying session must
  // never re-record.
  Base.RecordPath.clear();
  Base.RecordSink = nullptr;
}

SessionManager::~SessionManager() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  CV.notify_all();
  Pool.stop();
}

SessionHandle &SessionManager::open() { return open(Base.Clients); }

SessionHandle &SessionManager::open(ClientSet Clients) {
  std::lock_guard<std::mutex> Lock(Mu);
  SessionId Id = NextId++;
  auto H = std::unique_ptr<SessionHandle>(new SessionHandle(*this, Id,
                                                            Clients));
  SessionConfig SC = Base;
  SC.Clients = Clients;
  H->PS = std::make_unique<ProfileSession>(std::move(SC));
  // Prepare eagerly so even a zero-feed session folds as a well-defined
  // empty profile rather than being silently skipped by the merge guards.
  H->PS->prepare(Mod);
  H->LastTouch = std::chrono::steady_clock::now();
  SessionHandle &Ref = *H;
  Sessions.emplace(Id, std::move(H));
  bump("serve.sessions_opened");
  return Ref;
}

SessionHandle *SessionManager::find(SessionId Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sessions.find(Id);
  return It == Sessions.end() ? nullptr : It->second.get();
}

std::vector<SessionHandle *> SessionManager::sessions() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<SessionHandle *> Out;
  Out.reserve(Sessions.size());
  for (auto &KV : Sessions)
    Out.push_back(KV.second.get());
  return Out;
}

void SessionManager::abort(SessionHandle &S, const std::string &Why) {
  std::lock_guard<std::mutex> Lock(Mu);
  failLocked(S, SessionState::Failed, Why);
}

size_t SessionManager::evictIdle() {
  if (Limits.IdleEvictSeconds <= 0)
    return 0;
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  auto Now = std::chrono::steady_clock::now();
  for (auto &KV : Sessions) {
    SessionHandle &S = *KV.second;
    if (S.St != SessionState::Open || S.JobActive || !S.Pending.empty())
      continue;
    double Idle = std::chrono::duration<double>(Now - S.LastTouch).count();
    if (Idle < Limits.IdleEvictSeconds)
      continue;
    failLocked(S, SessionState::Evicted,
               "session evicted after " +
                   std::to_string(uint64_t(Idle)) + "s idle");
    ++N;
  }
  return N;
}

void SessionManager::failLocked(SessionHandle &S, SessionState To,
                                const std::string &Why) {
  if (S.St == SessionState::Closed || S.St == SessionState::Failed ||
      S.St == SessionState::Evicted)
    return;
  S.St = To;
  S.Diag = Why;
  S.PendingBytes -= std::accumulate(
      S.Pending.begin(), S.Pending.end(), uint64_t(0),
      [](uint64_t A, const std::string &C) { return A + C.size(); });
  S.Pending.clear();
  bump(To == SessionState::Evicted ? "serve.sessions_evicted"
                                   : "serve.sessions_failed");
  CV.notify_all();
}

void SessionManager::scheduleDrainLocked(SessionHandle &S) {
  if (S.JobActive || ShuttingDown)
    return;
  S.JobActive = true;
  Pool.submit([this, &S] { drainJob(S); });
}

void SessionManager::drainJob(SessionHandle &S) {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (S.Pending.empty() || ShuttingDown ||
        (S.St != SessionState::Open && S.St != SessionState::Draining)) {
      if (S.St == SessionState::Draining && S.Pending.empty() &&
          !ShuttingDown) {
        S.St = SessionState::Closed;
        bump("serve.sessions_closed");
      }
      S.JobActive = false;
      CV.notify_all();
      return;
    }
    std::string Chunk = std::move(S.Pending.front());
    S.Pending.pop_front();

    // Replay outside the lock: only this job touches S.PS's profilers, and
    // the handle itself outlives the manager's workers.
    Lock.unlock();
    ReplayRun R = S.PS->replay(Mod, Chunk);
    Lock.lock();

    S.PendingBytes -= Chunk.size();
    S.Events += R.Events;
    S.Segments += R.Segments;
    bump("serve.bytes_replayed", Chunk.size());
    bump("serve.events_replayed", R.Events);
    bump("serve.segments_replayed", R.Segments);
    if (!R.Ok) {
      // Malformed stream: fail this session — and only this session —
      // with the TraceIO offset-stamped diagnostic, verbatim.
      failLocked(S, SessionState::Failed, R.Error);
      S.JobActive = false;
      CV.notify_all();
      return;
    }
    CV.notify_all(); // Backpressure waiters: the backlog just shrank.
  }
}

std::unique_ptr<ProfileSession>
SessionManager::foldClosed(uint64_t &EventsOut, uint64_t &SessionsOut) {
  EventsOut = 0;
  SessionsOut = 0;
  // Snapshot under the lock; Closed sessions are immutable from here on
  // (handles are never erased), so the fold itself can run unlocked.
  std::vector<SessionHandle *> Closed;
  ClientSet Union;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto &KV : Sessions)
      if (KV.second->St == SessionState::Closed) {
        Closed.push_back(KV.second.get());
        Union |= KV.second->Clients;
      }
  }
  if (Closed.empty())
    return nullptr;

  SessionConfig SC = Base;
  SC.Clients = Union;
  auto Target = std::make_unique<ProfileSession>(std::move(SC));
  Target->prepare(Mod);
  {
    // Fold in session-id order into the freshly prepared session: the
    // empty-merge identity (DepGraph::mergeFrom) makes this reproduce the
    // sequential replay of the same streams byte for byte, at any worker
    // count.
    obs::PhaseTimer Span(Target->stats(), "merge");
    for (SessionHandle *S : Closed) {
      Target->mergeFrom(*S->PS);
      EventsOut += S->Events;
      ++SessionsOut;
    }
  }
  bump("serve.folds");
  return Target;
}

void SessionManager::bump(const char *Counter, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ServeStats.add(ServeStats.counter(Counter), Delta);
}

void SessionManager::statsJson(OutStream &OS) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ServeStats.writeJson(OS);
}

void SessionManager::withStats(
    const std::function<void(obs::MetricsRegistry &)> &Fn) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  Fn(ServeStats);
}

//===----------------------------------------------------------------------===//
// replayShardedSession — the batch frontend
//===----------------------------------------------------------------------===//

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

ShardedSession
lud::replayShardedSession(const Module &M,
                          const std::vector<std::string> &TracePaths,
                          SessionConfig Cfg, unsigned Threads) {
  ShardedSession Out;
  unsigned Shards = unsigned(TracePaths.size());
  if (Shards == 0)
    return Out;
  auto T0 = std::chrono::steady_clock::now();
  // One streamed session per shard file, drained Threads at a time on the
  // manager's pool; the manager strips any record settings itself.
  serve::SessionManager Mgr(M, std::move(Cfg), serve::SessionLimits{},
                            Threads);
  std::vector<serve::SessionHandle *> Handles;
  Handles.reserve(Shards);
  for (unsigned S = 0; S != Shards; ++S) {
    serve::SessionHandle &H = Mgr.open();
    Handles.push_back(&H);
    std::string Bytes;
    errno = 0;
    if (!trace::readFileBytes(TracePaths[S], Bytes)) {
      // Same diagnostic ProfileSession::replayFile latches for the path.
      Mgr.abort(H, "cannot read '" + TracePaths[S] + "': " +
                       (errno ? std::strerror(errno) : "unknown error"));
      continue;
    }
    std::string Err;
    H.feed(std::move(Bytes), Err); // A failure surfaces at finish().
  }
  for (unsigned S = 0; S != Shards; ++S) {
    std::string Err;
    Handles[S]->finish(Err);
  }
  for (unsigned S = 0; S != Shards; ++S) {
    // Events count even for failed shards (partial replays are real work).
    Out.Events += Handles[S]->events();
    if (Out.Error.empty() &&
        Handles[S]->state() != serve::SessionState::Closed)
      Out.Error = TracePaths[S] + ": " + Handles[S]->error();
  }
  if (!Out.Error.empty()) {
    Out.Seconds = secondsSince(T0);
    return Out; // A half-replayed shard must not fold into the result.
  }
  uint64_t Events = 0, NumSessions = 0;
  Out.Session = Mgr.foldClosed(Events, NumSessions);
  Out.Seconds = secondsSince(T0);
  return Out;
}
