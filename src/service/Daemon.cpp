//===- service/Daemon.cpp - The lud-serve profiling daemon -----------------===//

#include "service/Daemon.h"

#include "analysis/PassManager.h"
#include "profiling/FrozenGraph.h"
#include "support/OutStream.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

using namespace lud;
using namespace lud::serve;

//===----------------------------------------------------------------------===//
// Self-pipe signal plumbing (serveForever only)
//===----------------------------------------------------------------------===//

namespace {

// The classic self-pipe trick: the handler does the only async-safe thing
// — write one byte — and serveForever blocks on the read end.
int SignalPipe[2] = {-1, -1};

void onTermSignal(int) {
  char B = 1;
  // The result is irrelevant (a full pipe still wakes the reader), but
  // glibc marks write() warn_unused_result.
  ssize_t R = ::write(SignalPipe[1], &B, 1);
  (void)R;
}

bool parseU64(const std::string &S, uint64_t &V) {
  if (S.empty())
    return false;
  V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + uint64_t(C - '0');
  }
  return true;
}

void jsonEscape(const std::string &S, std::string &Out) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (uint8_t(C) < 0x20) {
      Out += ' ';
    } else {
      Out += C;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Daemon
//===----------------------------------------------------------------------===//

Daemon::Daemon(const Module &M, DaemonConfig CfgIn)
    : Mod(M), Cfg(std::move(CfgIn)) {
  Mgr = std::make_unique<SessionManager>(Mod, Cfg.Base, Cfg.Limits,
                                         Cfg.Workers);
}

Daemon::~Daemon() { stop(); }

bool Daemon::start(std::string &Err) {
  if (Started)
    return true;
  ignoreSigpipe();
  if (Cfg.Optimize && OptimizerSection.empty()) {
    // One pipeline run over the served module, before the listeners bind:
    // /report then appends the cached section and /stats carries opt.*
    // from the first request on.
    opt::PipelineOptions PO;
    PO.Engine = Cfg.Base.Engine;
    PO.Slicing = Cfg.Base.Slicing;
    opt::PassManager PM(std::move(PO));
    opt::PipelineResult PR = PM.run(Mod);
    StringOutStream OS;
    renderOptimizeReport(PR, OS);
    OptimizerSection = OS.str();
    Mgr->withStats([&PR](obs::MetricsRegistry &Reg) {
      opt::PassManager::accountStats(PR, Reg);
    });
  }
  IngestListen = listenUnix(Cfg.SocketPath, Err);
  if (!IngestListen)
    return false;
  HttpListen = listenTcp(Cfg.HttpPort, BoundHttpPort, Err);
  if (!HttpListen) {
    IngestListen.reset();
    ::unlink(Cfg.SocketPath.c_str());
    return false;
  }
  Started = true;
  Stopping = false;
  std::lock_guard<std::mutex> Lock(ThreadsMu);
  Threads.emplace_back([this] { acceptLoop(IngestListen.get(), false); });
  Threads.emplace_back([this] { acceptLoop(HttpListen.get(), true); });
  Threads.emplace_back([this] { sweeper(); });
  return true;
}

void Daemon::stop() {
  if (!Started || Stopping.exchange(true))
    return;
  // Closing the listeners unblocks the accept loops; shutting the active
  // connections down unblocks their readers. Everything then drains
  // through the normal paths and join() below completes.
  ::shutdown(IngestListen.get(), SHUT_RDWR);
  ::shutdown(HttpListen.get(), SHUT_RDWR);
  {
    std::lock_guard<std::mutex> Lock(ThreadsMu);
    for (int RawFd : ActiveConns)
      ::shutdown(RawFd, SHUT_RDWR);
  }
  SweepCV.notify_all();

  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ThreadsMu);
    ToJoin.swap(Threads);
  }
  for (std::thread &T : ToJoin)
    T.join();

  IngestListen.reset();
  HttpListen.reset();
  ::unlink(Cfg.SocketPath.c_str());
  Started = false;
}

bool Daemon::serveForever(std::string &Err) {
  if (::pipe(SignalPipe) != 0) {
    Err = "cannot create signal pipe";
    return false;
  }
  if (!start(Err))
    return false;
  ::signal(SIGTERM, onTermSignal);
  ::signal(SIGINT, onTermSignal);
  char B;
  while (::read(SignalPipe[0], &B, 1) < 0 && errno == EINTR)
    ;
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGINT, SIG_DFL);
  stop();
  ::close(SignalPipe[0]);
  ::close(SignalPipe[1]);
  SignalPipe[0] = SignalPipe[1] = -1;
  return true;
}

void Daemon::acceptLoop(int ListenFd, bool Http) {
  for (;;) {
    int Raw = ::accept(ListenFd, nullptr, nullptr);
    if (Raw < 0) {
      if (errno == EINTR)
        continue;
      return; // Listener closed: shutting down.
    }
    Mgr->bump(Http ? "serve.http_connections" : "serve.ingest_connections");
    std::lock_guard<std::mutex> Lock(ThreadsMu);
    // Checked under ThreadsMu: stop() flips Stopping before it swaps the
    // thread list out for joining, so a thread registered here is always
    // joined and one registered later is never spawned.
    if (Stopping) {
      ::close(Raw);
      return;
    }
    ActiveConns.insert(Raw);
    Threads.emplace_back([this, Raw, Http] {
      if (Http)
        handleHttp(Fd(Raw));
      else
        handleIngest(Fd(Raw));
      std::lock_guard<std::mutex> L(ThreadsMu);
      ActiveConns.erase(Raw);
    });
  }
}

//===----------------------------------------------------------------------===//
// Ingest protocol
//===----------------------------------------------------------------------===//

void Daemon::handleIngest(Fd Conn) {
  SocketReader In(Conn.get());
  SessionHandle *S = nullptr;
  bool Done = false;
  std::string Line;
  while (!Done && In.readLine(Line)) {
    // Split "VERB rest".
    size_t Sp = Line.find(' ');
    std::string Verb = Line.substr(0, Sp);
    std::string Rest = Sp == std::string::npos ? "" : Line.substr(Sp + 1);

    if (Verb == "OPEN") {
      if (S) {
        writeAll(Conn.get(), "ERR session already open on this connection\n");
        continue;
      }
      ClientSet Clients = Mgr->baseConfig().Clients;
      if (!Rest.empty()) {
        if (Rest.rfind("clients=", 0) != 0) {
          writeAll(Conn.get(), "ERR expected OPEN [clients=LIST]\n");
          continue;
        }
        std::string Err;
        ClientSet Parsed;
        if (!parseClientSet(Rest.substr(8), Parsed, Err)) {
          writeAll(Conn.get(), "ERR " + Err + "\n");
          continue;
        }
        Clients = Parsed;
      }
      S = &Mgr->open(Clients);
      writeAll(Conn.get(), "OK id=" + std::to_string(S->id()) + "\n");
    } else if (Verb == "FEED") {
      uint64_t N = 0;
      if (!S) {
        writeAll(Conn.get(), "ERR no open session (send OPEN first)\n");
        continue;
      }
      if (!parseU64(Rest, N)) {
        // Framing is unrecoverable without the length; drop the link.
        writeAll(Conn.get(), "ERR expected FEED <nbytes>\n");
        break;
      }
      std::string Payload;
      if (!In.readExact(Payload, size_t(N)))
        break; // EOF mid-payload: the epilogue aborts the session.
      std::string Err;
      if (S->feed(std::move(Payload), Err))
        writeAll(Conn.get(), "OK\n");
      else
        writeAll(Conn.get(), "ERR " + Err + "\n");
    } else if (Verb == "DONE") {
      if (!S) {
        writeAll(Conn.get(), "ERR no open session (send OPEN first)\n");
        continue;
      }
      std::string Err;
      if (S->finish(Err))
        writeAll(Conn.get(),
                 "OK events=" + std::to_string(S->events()) +
                     " segments=" + std::to_string(S->segments()) + "\n");
      else
        writeAll(Conn.get(), "ERR " + Err + "\n");
      Done = true;
    } else if (Verb == "STATUS") {
      if (!S) {
        writeAll(Conn.get(), "ERR no open session (send OPEN first)\n");
        continue;
      }
      writeAll(Conn.get(),
               "OK id=" + std::to_string(S->id()) +
                   " state=" + sessionStateName(S->state()) +
                   " bytes=" + std::to_string(S->bytesFed()) +
                   " events=" + std::to_string(S->events()) +
                   " segments=" + std::to_string(S->segments()) + "\n");
    } else if (Verb.empty()) {
      continue; // Tolerate blank lines.
    } else {
      writeAll(Conn.get(), "ERR unknown command '" + Verb + "'\n");
    }
  }
  // A connection that drops before DONE takes its session with it: a
  // half-streamed profile must never fold into the report.
  if (S && !Done)
    Mgr->abort(*S, "connection closed before DONE");
}

//===----------------------------------------------------------------------===//
// HTTP
//===----------------------------------------------------------------------===//

void Daemon::httpReply(int RawFd, int Code, const char *CodeText,
                       const std::string &ContentType,
                       const std::string &Body) {
  std::string Head = "HTTP/1.0 " + std::to_string(Code) + " " + CodeText +
                     "\r\nContent-Type: " + ContentType +
                     "\r\nContent-Length: " + std::to_string(Body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  writeAll(RawFd, Head);
  writeAll(RawFd, Body);
}

void Daemon::handleHttp(Fd Conn) {
  SocketReader In(Conn.get());
  std::string Request;
  if (!In.readLine(Request))
    return;
  if (!Request.empty() && Request.back() == '\r')
    Request.pop_back();
  // "GET /path HTTP/1.x" — the method and path are all we use; remaining
  // header lines are read lazily never (HTTP/1.0, close semantics).
  size_t Sp1 = Request.find(' ');
  size_t Sp2 = Request.find(' ', Sp1 == std::string::npos ? Sp1 : Sp1 + 1);
  if (Sp1 == std::string::npos || Sp2 == std::string::npos ||
      Request.substr(0, Sp1) != "GET") {
    httpReply(Conn.get(), 400, "Bad Request", "text/plain",
              "only GET is supported\n");
    return;
  }
  std::string Path = Request.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  Mgr->bump("serve.http_requests");

  if (Path == "/healthz") {
    httpReply(Conn.get(), 200, "OK", "text/plain", "ok\n");
    return;
  }

  if (Path == "/report") {
    uint64_t Events = 0, NumSessions = 0;
    std::unique_ptr<ProfileSession> Folded =
        Mgr->foldClosed(Events, NumSessions);
    if (!Folded) {
      httpReply(Conn.get(), 404, "Not Found", "text/plain",
                "no completed sessions\n");
      return;
    }
    FrozenGraph FG(Folded->slicing()->graph());
    if (obs::MetricsRegistry *Stats = Folded->stats())
      FG.accountStats(*Stats);
    StringOutStream OS;
    renderReplayReport(Mod, *Folded, FG, Events, NumSessions, Cfg.Spec, OS);
    if (!OptimizerSection.empty())
      OS << "\n" << OptimizerSection;
    httpReply(Conn.get(), 200, "OK", "text/plain", OS.str());
    return;
  }

  if (Path == "/stats") {
    StringOutStream OS;
    Mgr->statsJson(OS);
    httpReply(Conn.get(), 200, "OK", "application/json", OS.str());
    return;
  }

  if (Path == "/sessions") {
    std::string Body = "[";
    bool First = true;
    for (SessionHandle *S : Mgr->sessions()) {
      if (!First)
        Body += ",";
      First = false;
      Body += "\n  {\"id\": " + std::to_string(S->id()) +
              ", \"state\": \"" + sessionStateName(S->state()) +
              "\", \"clients\": \"" + clientSetName(S->clients()) +
              "\", \"bytes\": " + std::to_string(S->bytesFed()) +
              ", \"events\": " + std::to_string(S->events()) +
              ", \"segments\": " + std::to_string(S->segments());
      std::string Err = S->error();
      if (!Err.empty()) {
        Body += ", \"error\": \"";
        jsonEscape(Err, Body);
        Body += "\"";
      }
      Body += "}";
    }
    Body += First ? "]\n" : "\n]\n";
    httpReply(Conn.get(), 200, "OK", "application/json", Body);
    return;
  }

  httpReply(Conn.get(), 404, "Not Found", "text/plain",
            "unknown path " + Path + "\n");
}

//===----------------------------------------------------------------------===//
// Sweeper
//===----------------------------------------------------------------------===//

void Daemon::sweeper() {
  std::unique_lock<std::mutex> Lock(SweepMu);
  while (!Stopping) {
    SweepCV.wait_for(
        Lock, std::chrono::duration<double>(
                  Cfg.SweepSeconds > 0 ? Cfg.SweepSeconds : 1.0));
    if (Stopping)
      return;
    Mgr->evictIdle();
  }
}
