//===- service/SessionManager.h - Streaming session lifecycle --*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session-lifecycle core of the profiling service: open a session,
/// feed it whole `lud.trace.v1` segments, finish it, and fold every
/// finished session into one report — the open → feed → fold → seal →
/// report arc ProfileSession gives a single batch run, lifted to many
/// concurrent streams. Replay work runs on a shared WorkerPool with at
/// most one in-flight drain job per session, so a session's chunks replay
/// in arrival order while distinct sessions replay in parallel.
///
/// Robustness is part of the contract: a hard per-session byte quota,
/// bounded ingest buffering (feed() blocks over the backpressure
/// watermark), idle-session eviction, and malformed-stream rejection that
/// fails only the offending session — carrying the TraceIO offset-stamped
/// diagnostic verbatim as the session's error.
///
/// Determinism: the report fold merges every Closed session in session-id
/// order into a fresh prepared session. DepGraph::mergeFrom into an empty
/// graph reproduces the source numbering exactly, so the folded report is
/// byte-identical to `lud-replay` over the same traces in the same order,
/// at any worker count. replayShardedSession() below is exactly that
/// batch frontend.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SERVICE_SESSIONMANAGER_H
#define LUD_SERVICE_SESSIONMANAGER_H

#include "obs/Metrics.h"
#include "support/WorkerPool.h"
#include "workloads/ParallelDriver.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lud {
namespace serve {

using SessionId = uint64_t;

enum class SessionState : uint8_t {
  Open,     ///< Accepting feed() bytes.
  Draining, ///< finish() called; queued chunks still replaying.
  Closed,   ///< Finished cleanly; participates in the report fold.
  Failed,   ///< Rejected (corrupt stream, quota, abort); never folded.
  Evicted,  ///< Idle-reaped; never folded.
};

const char *sessionStateName(SessionState S);

struct SessionLimits {
  /// Hard per-session ingest quota, bytes; exceeding it fails the session.
  uint64_t MaxSessionBytes = 1ull << 30;
  /// Backpressure watermark: feed() blocks while the session's queued,
  /// not-yet-replayed bytes are at or over this. A single chunk larger
  /// than the watermark still queues whole once the backlog drains (high-
  /// watermark semantics), so oversized segments slow a stream down
  /// rather than wedge it.
  uint64_t MaxPendingBytes = 64ull << 20;
  /// Evict Open sessions idle (no feed/finish) this many seconds; 0 never
  /// evicts.
  double IdleEvictSeconds = 0;
};

class SessionManager;

/// One streamed profiling session. Handles are created and owned by a
/// SessionManager and stay valid for the manager's lifetime, whatever
/// state the session reaches. Thread-safe: feed/finish/state may be
/// called from any thread.
class SessionHandle {
public:
  SessionId id() const { return Id; }
  ClientSet clients() const { return Clients; }
  SessionState state() const;
  /// Failure diagnostic once Failed/Evicted. For a corrupt stream this is
  /// the TraceIO offset-stamped message, verbatim — the same string
  /// `lud-replay` would print for the same bytes.
  std::string error() const;
  uint64_t bytesFed() const;
  uint64_t events() const;
  uint64_t segments() const;

  /// Queues \p Bytes — one or more complete `lud.trace.v1` segments — for
  /// replay, blocking while the session is over the backpressure
  /// watermark. Returns false when the session is not Open (an earlier
  /// chunk may have already failed it) or the quota would be exceeded;
  /// \p Err then carries the session's diagnostic.
  bool feed(std::string Bytes, std::string &Err);

  /// Drains the queued chunks and closes the session. True → Closed and
  /// the session folds into future reports; false → Failed/Evicted with
  /// \p Err set to the verbatim diagnostic.
  bool finish(std::string &Err);

private:
  friend class SessionManager;
  SessionHandle(SessionManager &Mgr, SessionId Id, ClientSet Clients)
      : Mgr(Mgr), Id(Id), Clients(Clients) {}

  SessionManager &Mgr;
  const SessionId Id;
  const ClientSet Clients;

  // Everything below is guarded by Mgr.Mu, except PS's profiler state,
  // which only the single in-flight drain job (and, once Closed, the
  // fold) touches.
  SessionState St = SessionState::Open;
  std::string Diag;
  std::unique_ptr<ProfileSession> PS;
  std::deque<std::string> Pending;
  uint64_t PendingBytes = 0;
  uint64_t Bytes = 0;
  uint64_t Events = 0;
  uint64_t Segments = 0;
  bool JobActive = false;
  std::chrono::steady_clock::time_point LastTouch;
};

/// Owns the sessions, the worker pool, and the `serve.*` telemetry.
class SessionManager {
public:
  /// \p Base configures every session (engine/slots/clients/stats);
  /// record settings are stripped — streamed sessions are already the
  /// recording. \p M must outlive the manager.
  SessionManager(const Module &M, SessionConfig Base,
                 SessionLimits Limits = {}, unsigned Workers = 4);
  ~SessionManager();

  SessionManager(const SessionManager &) = delete;
  SessionManager &operator=(const SessionManager &) = delete;

  /// Opens a session with the base client set (or \p Clients).
  SessionHandle &open();
  SessionHandle &open(ClientSet Clients);
  SessionHandle *find(SessionId Id);
  /// Snapshot of every session, in id order.
  std::vector<SessionHandle *> sessions();

  /// Fails \p S from outside the protocol (e.g. its connection died
  /// before DONE). No-op on already-terminal sessions.
  void abort(SessionHandle &S, const std::string &Why);

  /// Evicts Open sessions idle past Limits.IdleEvictSeconds; returns how
  /// many were evicted. No-op when the limit is 0.
  size_t evictIdle();

  /// Folds every Closed session, in session-id order, into a fresh
  /// prepared session (the empty-merge identity makes this reproduce the
  /// sequential replay exactly). \p EventsOut / \p SessionsOut report the
  /// folded totals; returns null when no session is Closed. Sessions stay
  /// Closed and foldable — the fold target is fresh every time, so
  /// serving a report is repeatable and non-destructive.
  std::unique_ptr<ProfileSession> foldClosed(uint64_t &EventsOut,
                                             uint64_t &SessionsOut);

  const Module &module() const { return Mod; }
  const SessionConfig &baseConfig() const { return Base; }
  const SessionLimits &limits() const { return Limits; }
  unsigned workers() const { return Pool.threads(); }

  /// Thread-safe bump of a `serve.*` counter (shared with the daemon's
  /// HTTP layer).
  void bump(const char *Counter, uint64_t Delta = 1);
  /// Lock-guarded `lud.stats.v1` JSON snapshot of the serve.* registry.
  void statsJson(OutStream &OS);
  /// Lock-guarded direct access to the registry for publishers that emit
  /// whole metric families (e.g. the optimizer's opt.* block).
  void withStats(const std::function<void(obs::MetricsRegistry &)> &Fn);

private:
  friend class SessionHandle;

  // All private helpers named *Locked require Mu held.
  void scheduleDrainLocked(SessionHandle &S);
  void failLocked(SessionHandle &S, SessionState To, const std::string &Why);
  void drainJob(SessionHandle &S);

  const Module &Mod;
  SessionConfig Base;
  SessionLimits Limits;

  std::mutex Mu;
  std::condition_variable CV;
  std::map<SessionId, std::unique_ptr<SessionHandle>> Sessions;
  SessionId NextId = 1;
  bool ShuttingDown = false;

  std::mutex StatsMu;
  obs::MetricsRegistry ServeStats;

  WorkerPool Pool; // Last member: workers must die before the state above.
};

} // namespace serve

/// Re-drives a sharded recording: one streamed session per trace file in
/// \p TracePaths, replayed at most \p Threads at a time, folded in index
/// order — the deterministic shard fold, now running through the same
/// serve::SessionManager lifecycle the lud-serve daemon uses, so batch
/// replay and streaming ingest are two frontends over one session API.
/// The result is identical to the live sharded run's and independent of
/// \p Threads.
ShardedSession replayShardedSession(const Module &M,
                                    const std::vector<std::string> &TracePaths,
                                    SessionConfig Cfg = {},
                                    unsigned Threads = 4);

} // namespace lud

#endif // LUD_SERVICE_SESSIONMANAGER_H
