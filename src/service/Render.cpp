//===- service/Render.cpp - Shared replay-report renderer ------------------===//

#include "service/Render.h"

#include "analysis/CacheCost.h"
#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "profiling/FrozenGraph.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"

using namespace lud;
using namespace lud::serve;

void lud::serve::renderReplaySummary(const ProfileSession &S,
                                     const FrozenGraph &FG, uint64_t Events,
                                     uint64_t NumTraces, OutStream &OS) {
  OS << "replayed " << Events << " events from " << NumTraces
     << (NumTraces == 1 ? " trace\n" : " traces\n");
  OS << "Gcost: " << uint64_t(FG.numNodes()) << " nodes, "
     << uint64_t(FG.numEdges()) << " edges, sealed ";
  OS.printFixed(double(FG.memoryFootprint().total()) / 1024.0, 1);
  OS << " KB, CR ";
  const SlicingProfiler *Prof = S.slicing();
  OS.printFixed(Prof ? Prof->averageCR() : 0.0, 3);
  OS << "\n";
}

void lud::serve::renderReportSections(const Module &M,
                                      const ProfileSession &S,
                                      const FrozenGraph &FG,
                                      const ReportSpec &Spec, OutStream &OS) {
  CostModel CM(FG);
  if (Spec.Report) {
    ReportOptions Opts;
    Opts.Depth = Spec.Client.Depth;
    LowUtilityReport Report(CM, M, Opts);
    OS << "\n=== low-utility data structures ===\n";
    Report.print(OS, Spec.Client.TopK);
  }
  if (Spec.Caches) {
    OS << "\n=== cache effectiveness (least effective first) ===\n";
    printCacheScores(rankCacheEffectiveness(CM, M), OS, Spec.Client.TopK);
  }
  S.printClientReports(M, OS, Spec.Client.TopK);
  if (Spec.Dead) {
    DeadValueAnalysis DV = computeDeadValues(FG, FG.totalFreq());
    OS << "\n=== bloat metrics ===\nIPD ";
    OS.printFixed(100.0 * DV.Metrics.ipd(), 1);
    OS << "%   IPP ";
    OS.printFixed(100.0 * DV.Metrics.ipp(), 1);
    OS << "%   NLD ";
    OS.printFixed(100.0 * DV.Metrics.nld(), 1);
    OS << "%\n";
  }
}

void lud::serve::renderReplayReport(const Module &M, const ProfileSession &S,
                                    const FrozenGraph &FG, uint64_t Events,
                                    uint64_t NumTraces, const ReportSpec &Spec,
                                    OutStream &OS) {
  renderReplaySummary(S, FG, Events, NumTraces, OS);
  renderReportSections(M, S, FG, Spec, OS);
}
