//===- service/Render.h - Shared replay-report renderer --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place the replayed report is rendered. `lud-replay` printing to
/// stdout and the `lud-serve` daemon answering GET /report must produce
/// byte-identical text for the same folded session — the ISSUE's
/// acceptance test diffs them — so both call these functions rather than
/// owning format strings. The summary prints the sealed FrozenGraph
/// footprint ("sealed X KB"): unlike the mutable DepGraph's
/// capacity-dependent number, the sealed CSR footprint is a pure function
/// of the graph's contents, hence identical however the sessions were
/// buffered on the way in.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SERVICE_RENDER_H
#define LUD_SERVICE_RENDER_H

#include "analysis/Clients.h"

#include <cstdint>

namespace lud {

class Module;
class OutStream;
class ProfileSession;
class FrozenGraph;

namespace serve {

/// Which report sections to render, mirroring lud-replay's flags; client
/// sections follow the session's own ClientSet.
struct ReportSpec {
  bool Report = false;
  bool Dead = false;
  bool Caches = false;
  ClientOptions Client;
};

/// The two-line replay summary: events/trace counts and the Gcost size
/// line ("Gcost: N nodes, E edges, sealed X KB, CR c").
void renderReplaySummary(const ProfileSession &S, const FrozenGraph &FG,
                         uint64_t Events, uint64_t NumTraces, OutStream &OS);

/// The "===" report sections in lud-replay's order: low-utility report,
/// cache effectiveness, client sections, bloat metrics.
void renderReportSections(const Module &M, const ProfileSession &S,
                          const FrozenGraph &FG, const ReportSpec &Spec,
                          OutStream &OS);

/// Summary plus sections — the whole report, as GET /report serves it.
void renderReplayReport(const Module &M, const ProfileSession &S,
                        const FrozenGraph &FG, uint64_t Events,
                        uint64_t NumTraces, const ReportSpec &Spec,
                        OutStream &OS);

} // namespace serve
} // namespace lud

#endif // LUD_SERVICE_RENDER_H
