//===- service/Client.cpp - lud-serve client helpers -----------------------===//

#include "service/Client.h"

#include "trace/TraceIO.h"

using namespace lud;
using namespace lud::serve;

//===----------------------------------------------------------------------===//
// ServeClient
//===----------------------------------------------------------------------===//

bool ServeClient::connect(const std::string &SocketPath, std::string &Err) {
  ignoreSigpipe();
  Conn = connectUnix(SocketPath, Err);
  if (!Conn)
    return false;
  In = std::make_unique<SocketReader>(Conn.get());
  return true;
}

bool ServeClient::command(const std::string &Line, std::string &Reply,
                          std::string &Err) {
  if (!Conn) {
    Err = "not connected";
    return false;
  }
  if (!writeAll(Conn.get(), Line + "\n")) {
    Err = "connection lost";
    return false;
  }
  if (!In->readLine(Reply)) {
    Err = "daemon closed the connection";
    return false;
  }
  if (Reply.rfind("ERR ", 0) == 0) {
    Err = Reply.substr(4);
    return false;
  }
  if (Reply.rfind("OK", 0) != 0) {
    Err = "malformed reply: " + Reply;
    return false;
  }
  return true;
}

static bool replyField(const std::string &Reply, const std::string &Key,
                       uint64_t &V) {
  size_t At = Reply.find(Key + "=");
  if (At == std::string::npos)
    return false;
  At += Key.size() + 1;
  V = 0;
  bool Any = false;
  while (At < Reply.size() && Reply[At] >= '0' && Reply[At] <= '9') {
    V = V * 10 + uint64_t(Reply[At++] - '0');
    Any = true;
  }
  return Any;
}

bool ServeClient::open(std::string &Err) {
  std::string Reply;
  if (!command("OPEN", Reply, Err))
    return false;
  return replyField(Reply, "id", Id);
}

bool ServeClient::open(ClientSet Clients, std::string &Err) {
  std::string Reply;
  if (!command("OPEN clients=" + clientSetName(Clients), Reply, Err))
    return false;
  return replyField(Reply, "id", Id);
}

bool ServeClient::feed(const std::string &Bytes, std::string &Err) {
  if (!Conn) {
    Err = "not connected";
    return false;
  }
  if (!writeAll(Conn.get(), "FEED " + std::to_string(Bytes.size()) + "\n") ||
      !writeAll(Conn.get(), Bytes)) {
    Err = "connection lost";
    return false;
  }
  std::string Reply;
  if (!In->readLine(Reply)) {
    Err = "daemon closed the connection";
    return false;
  }
  if (Reply.rfind("ERR ", 0) == 0) {
    Err = Reply.substr(4);
    return false;
  }
  return Reply.rfind("OK", 0) == 0;
}

bool ServeClient::done(std::string &Err) {
  std::string Reply;
  if (!command("DONE", Reply, Err))
    return false;
  replyField(Reply, "events", Events);
  replyField(Reply, "segments", Segments);
  return true;
}

void ServeClient::close() {
  In.reset();
  Conn.reset();
}

//===----------------------------------------------------------------------===//
// httpGet
//===----------------------------------------------------------------------===//

bool lud::serve::httpGet(uint16_t Port, const std::string &Path,
                         std::string &Body, std::string &Err) {
  ignoreSigpipe();
  Fd Conn = connectTcp(Port, Err);
  if (!Conn)
    return false;
  if (!writeAll(Conn.get(), "GET " + Path + " HTTP/1.0\r\n\r\n")) {
    Err = "connection lost";
    return false;
  }
  SocketReader In(Conn.get());
  std::string Status;
  if (!In.readLine(Status)) {
    Err = "daemon closed the connection";
    return false;
  }
  // Skip headers up to the blank line; HTTP/1.0 + Connection: close means
  // the body is simply everything until EOF.
  std::string Line;
  while (In.readLine(Line)) {
    if (Line == "\r" || Line.empty())
      break;
  }
  Body.clear();
  std::string Chunk;
  while (In.readExact(Chunk, 1))
    Body += Chunk;
  // readExact over-reads one byte at a time only at the tail; bulk bytes
  // arrive through the reader's internal 16K buffer, so this stays O(n).
  bool Ok = Status.rfind("HTTP/1.0 200", 0) == 0 ||
            Status.rfind("HTTP/1.1 200", 0) == 0;
  if (!Ok)
    Err = "HTTP status: " + Status + (Body.empty() ? "" : (" — " + Body));
  return Ok;
}

//===----------------------------------------------------------------------===//
// splitSegments
//===----------------------------------------------------------------------===//

bool lud::serve::splitSegments(const std::string &Bytes,
                               std::vector<std::string> &Segments,
                               std::string &Err) {
  Segments.clear();
  Err.clear();
  trace::TraceReader R(Bytes);
  size_t SegStart = 0;
  while (!R.atEnd()) {
    trace::TraceEvent E;
    bool Ok = R.readHeader();
    while (Ok && E.Kind != trace::EventKind::End)
      Ok = R.next(E);
    if (!Ok) {
      // Undecodable: ship the whole stream as one frame, so the daemon's
      // offset-stamped diagnostic counts from the same origin lud-replay
      // counts from over the same file.
      Segments.clear();
      Segments.push_back(Bytes);
      return true;
    }
    Segments.push_back(Bytes.substr(SegStart, R.offset() - SegStart));
    SegStart = R.offset();
  }
  return true;
}
