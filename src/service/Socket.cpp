//===- service/Socket.cpp - Minimal local-socket plumbing ------------------===//

#include "service/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lud;
using namespace lud::serve;

Fd &Fd::operator=(Fd &&O) noexcept {
  if (this != &O) {
    reset(O.RawFd);
    O.RawFd = -1;
  }
  return *this;
}

void Fd::reset(int NewFd) {
  if (RawFd >= 0)
    ::close(RawFd);
  RawFd = NewFd;
}

void lud::serve::ignoreSigpipe() {
  // MSG_NOSIGNAL covers sends, but a peer reset between poll and write can
  // still raise SIGPIPE through other paths; belt and braces.
  ::signal(SIGPIPE, SIG_IGN);
}

static std::string errnoMsg(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

Fd lud::serve::listenUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return Fd();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  Fd S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S) {
    Err = errnoMsg("socket");
    return Fd();
  }
  ::unlink(Path.c_str()); // A stale socket file from a dead daemon.
  if (::bind(S.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = errnoMsg(("bind " + Path).c_str());
    return Fd();
  }
  if (::listen(S.get(), 64) != 0) {
    Err = errnoMsg("listen");
    return Fd();
  }
  return S;
}

Fd lud::serve::connectUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return Fd();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  Fd S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S) {
    Err = errnoMsg("socket");
    return Fd();
  }
  if (::connect(S.get(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Err = errnoMsg(("connect " + Path).c_str());
    return Fd();
  }
  return S;
}

Fd lud::serve::listenTcp(uint16_t Port, uint16_t &PortOut, std::string &Err) {
  Fd S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S) {
    Err = errnoMsg("socket");
    return Fd();
  }
  int One = 1;
  ::setsockopt(S.get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // Local-only, always.
  Addr.sin_port = htons(Port);
  if (::bind(S.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = errnoMsg("bind 127.0.0.1");
    return Fd();
  }
  if (::listen(S.get(), 64) != 0) {
    Err = errnoMsg("listen");
    return Fd();
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(S.get(), reinterpret_cast<sockaddr *>(&Addr), &Len) !=
      0) {
    Err = errnoMsg("getsockname");
    return Fd();
  }
  PortOut = ntohs(Addr.sin_port);
  return S;
}

Fd lud::serve::connectTcp(uint16_t Port, std::string &Err) {
  Fd S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S) {
    Err = errnoMsg("socket");
    return Fd();
  }
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(S.get(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Err = errnoMsg("connect 127.0.0.1");
    return Fd();
  }
  return S;
}

bool lud::serve::writeAll(int RawFd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len) {
#ifdef MSG_NOSIGNAL
    ssize_t N = ::send(RawFd, P, Len, MSG_NOSIGNAL);
#else
    ssize_t N = ::send(RawFd, P, Len, 0);
#endif
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= size_t(N);
  }
  return true;
}

bool lud::serve::writeAll(int RawFd, const std::string &S) {
  return writeAll(RawFd, S.data(), S.size());
}

bool SocketReader::fill() {
  char Tmp[16384];
  for (;;) {
    ssize_t N = ::recv(RawFd, Tmp, sizeof(Tmp), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    // Compact occasionally so a long-lived connection doesn't keep every
    // consumed byte around.
    if (Pos > 1 << 20) {
      Buf.erase(0, Pos);
      Pos = 0;
    }
    Buf.append(Tmp, size_t(N));
    return true;
  }
}

bool SocketReader::readLine(std::string &Line) {
  for (;;) {
    size_t NL = Buf.find('\n', Pos);
    if (NL != std::string::npos) {
      Line.assign(Buf, Pos, NL - Pos);
      Pos = NL + 1;
      return true;
    }
    if (!fill())
      return false;
  }
}

bool SocketReader::readExact(std::string &Out, size_t Len) {
  while (Buf.size() - Pos < Len)
    if (!fill())
      return false;
  Out.assign(Buf, Pos, Len);
  Pos += Len;
  return true;
}
