//===- service/Client.h - lud-serve client helpers -------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the daemon's wire protocol: a small ingest-protocol
/// speaker (used by `lud-serve --send` and the end-to-end tests), a
/// one-shot HTTP GET, and the segment splitter that turns a recorded
/// trace file into the whole-segment FEED frames the protocol requires.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SERVICE_CLIENT_H
#define LUD_SERVICE_CLIENT_H

#include "profiling/ClientSet.h"
#include "service/Socket.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lud {
namespace serve {

/// Speaks the ingest protocol over one connection / one session.
/// Methods return false with the daemon's ERR text (or a transport
/// diagnostic) in \p Err.
class ServeClient {
public:
  ServeClient() = default;

  bool connect(const std::string &SocketPath, std::string &Err);
  /// OPEN [clients=...]; fills id().
  bool open(std::string &Err);
  bool open(ClientSet Clients, std::string &Err);
  /// FEED one whole-segment frame.
  bool feed(const std::string &Bytes, std::string &Err);
  /// DONE; fills events()/segments() from the daemon's reply.
  bool done(std::string &Err);
  void close();

  uint64_t id() const { return Id; }
  uint64_t events() const { return Events; }
  uint64_t segments() const { return Segments; }

private:
  bool command(const std::string &Line, std::string &Reply, std::string &Err);

  Fd Conn;
  std::unique_ptr<SocketReader> In;
  uint64_t Id = 0;
  uint64_t Events = 0;
  uint64_t Segments = 0;
};

/// GET http://127.0.0.1:\p Port\p Path; \p Body gets the response body.
/// False (with \p Err) on transport failure or a non-200 status.
bool httpGet(uint16_t Port, const std::string &Path, std::string &Body,
             std::string &Err);

/// Splits a recorded `lud.trace.v1` stream into whole segments — the FEED
/// framing unit. On undecodable input the whole stream comes back as one
/// segment and the function still returns true: the daemon is the
/// authority on malformed streams, and sending the bytes unsplit keeps
/// its offset-stamped diagnostics identical to lud-replay's over the
/// same file.
bool splitSegments(const std::string &Bytes,
                   std::vector<std::string> &Segments, std::string &Err);

} // namespace serve
} // namespace lud

#endif // LUD_SERVICE_CLIENT_H
