//===- service/Daemon.h - The lud-serve profiling daemon -------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The always-on profiling service: a daemon that accepts any number of
/// concurrent trace streams over a unix-domain socket — one session per
/// connection, line-framed `lud.trace.v1` segments — and serves the folded
/// report and `lud.stats.v1` telemetry over a minimal local HTTP endpoint.
/// Ingest and reporting both sit directly on the serve::SessionManager
/// lifecycle; the daemon adds only transport. The full wire protocol is
/// documented in docs/SERVICE.md.
///
/// Ingest protocol (text lines + raw payloads):
///
///   OPEN [clients=LIST]      -> OK id=N            | ERR <msg>
///   FEED <nbytes>\n<payload> -> OK                 | ERR <diagnostic>
///   DONE                     -> OK events=E segments=G | ERR <diagnostic>
///   STATUS                   -> OK id=N state=S bytes=B events=E segments=G
///
/// FEED payloads must contain whole segments. A connection that drops
/// before DONE aborts its session; a malformed payload fails only that
/// session, with the TraceIO offset-stamped diagnostic verbatim in the
/// ERR line.
///
/// HTTP (HTTP/1.0, loopback only): GET /report (the folded report,
/// byte-identical to lud-replay over the same streams), /stats
/// (lud.stats.v1 JSON), /sessions (JSON roster), /healthz.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SERVICE_DAEMON_H
#define LUD_SERVICE_DAEMON_H

#include "service/Render.h"
#include "service/SessionManager.h"
#include "service/Socket.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace lud {
namespace serve {

struct DaemonConfig {
  /// Unix-domain socket path for trace ingest.
  std::string SocketPath = "/tmp/lud-serve.sock";
  /// HTTP port on 127.0.0.1; 0 picks a free port (see Daemon::httpPort()).
  uint16_t HttpPort = 0;
  /// Replay worker threads in the SessionManager's pool.
  unsigned Workers = 4;
  /// Base configuration for every session (clients, slots, stats).
  SessionConfig Base;
  SessionLimits Limits;
  /// Sections GET /report renders.
  ReportSpec Spec;
  /// Run the rewrite-pass pipeline over the module at startup: /report
  /// gains the "=== Optimizer ===" section and /stats the opt.* metrics.
  bool Optimize = false;
  /// Idle-eviction sweep cadence, seconds.
  double SweepSeconds = 1.0;
};

/// One daemon instance: listeners, connection threads, and the session
/// manager they feed. start()/stop() are idempotent; serveForever() is
/// the tool entry point (blocks until SIGTERM/SIGINT).
class Daemon {
public:
  Daemon(const Module &M, DaemonConfig Cfg);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds both listeners and starts the accept/sweeper threads. False
  /// with \p Err set when a bind fails (daemon already running, bad
  /// path...).
  bool start(std::string &Err);

  /// Stops listening, kicks every in-flight connection loose, joins all
  /// threads. Safe to call twice; the destructor calls it.
  void stop();

  bool running() const { return Started && !Stopping; }
  /// The bound HTTP port (resolves HttpPort == 0).
  uint16_t httpPort() const { return BoundHttpPort; }
  const std::string &socketPath() const { return Cfg.SocketPath; }
  SessionManager &sessions() { return *Mgr; }

  /// start() + block until SIGTERM/SIGINT (self-pipe) + stop(). Returns
  /// false (with \p Err) when start fails.
  bool serveForever(std::string &Err);

private:
  void acceptLoop(int ListenFd, bool Http);
  void handleIngest(Fd Conn);
  void handleHttp(Fd Conn);
  void sweeper();
  void httpReply(int RawFd, int Code, const char *CodeText,
                 const std::string &ContentType, const std::string &Body);

  const Module &Mod;
  DaemonConfig Cfg;
  std::unique_ptr<SessionManager> Mgr;
  /// Rendered "=== Optimizer ===" section, cached at start() when
  /// Cfg.Optimize is set; appended to every /report.
  std::string OptimizerSection;

  Fd IngestListen;
  Fd HttpListen;
  uint16_t BoundHttpPort = 0;

  std::mutex ThreadsMu;
  std::vector<std::thread> Threads;
  std::set<int> ActiveConns; // Raw fds, for shutdown() at stop time.

  std::mutex SweepMu;
  std::condition_variable SweepCV;

  std::atomic<bool> Started{false};
  std::atomic<bool> Stopping{false};
};

} // namespace serve
} // namespace lud

#endif // LUD_SERVICE_DAEMON_H
