//===- service/Socket.h - Minimal local-socket plumbing --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's transport layer, kept deliberately small: an fd RAII
/// wrapper, unix-domain and loopback-TCP listen/connect helpers, a
/// robust writeAll, and a buffered line/exact reader for the framed
/// ingest protocol. Everything is blocking — the daemon is
/// thread-per-connection — and local-only: the TCP listener binds
/// 127.0.0.1, never a routable address.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SERVICE_SOCKET_H
#define LUD_SERVICE_SOCKET_H

#include <cstdint>
#include <string>

namespace lud {
namespace serve {

/// Owning file descriptor; -1 when empty.
class Fd {
public:
  Fd() = default;
  explicit Fd(int RawFd) : RawFd(RawFd) {}
  Fd(Fd &&O) noexcept : RawFd(O.RawFd) { O.RawFd = -1; }
  Fd &operator=(Fd &&O) noexcept;
  ~Fd() { reset(); }

  Fd(const Fd &) = delete;
  Fd &operator=(const Fd &) = delete;

  int get() const { return RawFd; }
  bool valid() const { return RawFd >= 0; }
  explicit operator bool() const { return valid(); }
  /// Closes the held descriptor (if any) and takes ownership of \p NewFd.
  void reset(int NewFd = -1);
  /// Releases ownership without closing.
  int release() {
    int R = RawFd;
    RawFd = -1;
    return R;
  }

private:
  int RawFd = -1;
};

/// Makes SIGPIPE a write error instead of process death. Idempotent;
/// every daemon/client entry point calls it.
void ignoreSigpipe();

/// Binds and listens on a unix-domain socket at \p Path (unlinking a
/// stale file first). Invalid Fd with \p Err set on failure.
Fd listenUnix(const std::string &Path, std::string &Err);
Fd connectUnix(const std::string &Path, std::string &Err);

/// Binds and listens on 127.0.0.1:\p Port (0 picks a free port); the
/// bound port comes back in \p PortOut.
Fd listenTcp(uint16_t Port, uint16_t &PortOut, std::string &Err);
Fd connectTcp(uint16_t Port, std::string &Err);

/// Writes all of \p Data, retrying on EINTR and partial writes.
bool writeAll(int RawFd, const void *Data, size_t Len);
bool writeAll(int RawFd, const std::string &S);

/// Buffered reader over a connected socket for the line-framed protocol:
/// '\n'-terminated command lines interleaved with exact-length binary
/// payloads.
class SocketReader {
public:
  explicit SocketReader(int RawFd) : RawFd(RawFd) {}

  /// Reads up to the next '\n' (consumed, not returned). False on EOF or
  /// error with nothing buffered.
  bool readLine(std::string &Line);
  /// Reads exactly \p Len bytes into \p Out.
  bool readExact(std::string &Out, size_t Len);

private:
  bool fill();

  int RawFd;
  std::string Buf;
  size_t Pos = 0;
};

} // namespace serve
} // namespace lud

#endif // LUD_SERVICE_SOCKET_H
