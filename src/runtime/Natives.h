//===- runtime/Natives.h - Native function registry ------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native methods: the boundary where data leaves the managed world. The
/// profiler models consumer natives as the paper's "native nodes", and a
/// value reaching one counts as program output (infinite benefit weight,
/// Section 1). The standard registry provides deterministic I/O surrogates.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_RUNTIME_NATIVES_H
#define LUD_RUNTIME_NATIVES_H

#include "runtime/Value.h"

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace lud {

class Heap;
class OutStream;

/// Mutable state shared by the natives of one run.
struct NativeContext {
  Heap *TheHeap = nullptr;
  /// When set, `print` writes here; otherwise it folds into SinkHash.
  OutStream *Print = nullptr;
  /// Deterministic input tape for the `input` native (wraps around).
  const std::vector<int64_t> *Input = nullptr;
  size_t InputCursor = 0;
  /// Fold of everything sunk/printed; keeps outputs observable and makes
  /// the baseline run impossible to dead-code away.
  uint64_t SinkHash = 0;
  /// Monotonic counter backing the `timestamp` native.
  int64_t Clock = 0;
};

using NativeFn = Value (*)(NativeContext &Ctx, const Value *Args, size_t N);

struct NativeDecl {
  std::string Name;
  NativeFn Fn = nullptr;
  /// Consumer natives are output sinks: the paper's native nodes.
  bool IsConsumer = false;
  bool HasResult = false;
};

/// Name-keyed collection of native implementations. The interpreter binds a
/// module's interned native names against a registry at run start.
class NativeRegistry {
public:
  /// Registers \p D; later registrations with the same name win.
  void add(NativeDecl D) { Decls[D.Name] = std::move(D); }

  /// Returns the declaration for \p Name or null.
  const NativeDecl *find(const std::string &Name) const {
    auto It = Decls.find(Name);
    return It == Decls.end() ? nullptr : &It->second;
  }

  /// The standard natives: print, sink, input, timestamp.
  static const NativeRegistry &standard();

private:
  std::unordered_map<std::string, NativeDecl> Decls;
};

/// Name of the phase-marker pseudo-native, interpreted by the interpreter
/// itself (selective tracking, Section 4.1); it never reaches the registry
/// and produces no graph node.
inline constexpr const char *kPhaseNativeName = "phase";

} // namespace lud

#endif // LUD_RUNTIME_NATIVES_H
