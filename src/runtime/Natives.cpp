//===- runtime/Natives.cpp - Native function registry ---------------------===//

#include "runtime/Natives.h"

#include "support/OutStream.h"

using namespace lud;

namespace {

uint64_t mixInto(uint64_t Hash, uint64_t Bits) {
  Hash ^= Bits + 0x9E3779B97F4A7C15ULL + (Hash << 6) + (Hash >> 2);
  return Hash;
}

uint64_t valueBits(const Value &V) {
  switch (V.Kind) {
  case ValueKind::Int:
    return uint64_t(V.I);
  case ValueKind::Float: {
    uint64_t B;
    static_assert(sizeof(B) == sizeof(V.F));
    __builtin_memcpy(&B, &V.F, sizeof(B));
    return B;
  }
  case ValueKind::Ref:
    return uint64_t(V.R) | (uint64_t(1) << 63);
  }
  return 0;
}

Value nativePrint(NativeContext &Ctx, const Value *Args, size_t N) {
  for (size_t I = 0; I != N; ++I) {
    if (Ctx.Print) {
      switch (Args[I].Kind) {
      case ValueKind::Int:
        *Ctx.Print << Args[I].I;
        break;
      case ValueKind::Float:
        *Ctx.Print << Args[I].F;
        break;
      case ValueKind::Ref:
        *Ctx.Print << "obj#" << uint64_t(Args[I].R);
        break;
      }
      *Ctx.Print << '\n';
    }
    Ctx.SinkHash = mixInto(Ctx.SinkHash, valueBits(Args[I]));
  }
  return Value();
}

Value nativeSink(NativeContext &Ctx, const Value *Args, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Ctx.SinkHash = mixInto(Ctx.SinkHash, valueBits(Args[I]));
  return Value();
}

Value nativeInput(NativeContext &Ctx, const Value *, size_t) {
  if (!Ctx.Input || Ctx.Input->empty())
    return Value::makeInt(0);
  int64_t V = (*Ctx.Input)[Ctx.InputCursor % Ctx.Input->size()];
  ++Ctx.InputCursor;
  return Value::makeInt(V);
}

Value nativeTimestamp(NativeContext &Ctx, const Value *, size_t) {
  return Value::makeInt(Ctx.Clock++);
}

} // namespace

const NativeRegistry &NativeRegistry::standard() {
  static const NativeRegistry *Reg = [] {
    auto *R = new NativeRegistry();
    R->add({"print", nativePrint, /*IsConsumer=*/true, /*HasResult=*/false});
    R->add({"sink", nativeSink, /*IsConsumer=*/true, /*HasResult=*/false});
    R->add({"input", nativeInput, /*IsConsumer=*/false, /*HasResult=*/true});
    R->add({"timestamp", nativeTimestamp, /*IsConsumer=*/false,
            /*HasResult=*/true});
    return R;
  }();
  return *Reg;
}
