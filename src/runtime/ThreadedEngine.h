//===- runtime/ThreadedEngine.h - Direct-threaded engine -------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadedEngine<ProfilerT>: the fast execution backend. Each ir::Function
/// is pre-decoded, on first call, into a dense stream of fixed-size DIns
/// records — one per instruction, operands flattened into plain integers,
/// class layouts / native bindings / branch targets resolved at decode time
/// — and the stream is executed with direct-threaded dispatch: every DIns
/// carries the address of its handler, so the hot path is "run handler,
/// bump counter, jump through the next record" with no virtual dispatch,
/// no hash lookups, no unique_ptr chasing and no Value re-boxing. Where
/// computed goto is unavailable the same handler bodies compile into a
/// tight switch over the decoded opcode.
///
/// The decode cache is memoized per engine instance: decodedFn() returns
/// the existing stream or fills the function's slot once, the same
/// build-on-first-touch shape thorin's Emitter uses for defs_. Functions
/// that never run are never decoded.
///
/// Semantics are defined by runtime/Interpreter.h: identical trap and
/// budget ordering, identical profiler hook sequence and arguments (hooks
/// fire after the operation, onCallEnter before the callee frame push), so
/// any profiler pipeline — Noop, Slicing, composed clients, the trace
/// recorder — observes a byte-identical event stream on either engine.
/// tests/runtime/EngineEquivalenceTest.cpp and the lud-fuzz engine oracle
/// hold the two backends to that contract.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_RUNTIME_THREADEDENGINE_H
#define LUD_RUNTIME_THREADEDENGINE_H

#include "runtime/Engine.h"
#include "runtime/Interpreter.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

// Direct threading needs the address-of-label GNU extension; elsewhere (or
// with LUD_NO_COMPUTED_GOTO defined for testing the fallback) the decoded
// stream is executed by a switch over DIns::Op instead.
#if !defined(LUD_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define LUD_THREADED_GOTO 1
#else
#define LUD_THREADED_GOTO 0
#endif

namespace lud {

// One decoded opcode per executed variant: the decoder resolves the nested
// kind/op switches of the tree-walker once, so the execution loop never
// re-discriminates. Order matters in three places: the Bin, Un and CondBr
// families are laid out in BinOp / UnOp / CmpOp order so the decoder can
// compute the opcode by addition.
#define LUD_DOPC_LIST(X)                                                       \
  X(ConstInt)                                                                  \
  X(ConstFloat)                                                                \
  X(ConstNull)                                                                 \
  X(Assign)                                                                    \
  X(BinAdd)                                                                    \
  X(BinSub)                                                                    \
  X(BinMul)                                                                    \
  X(BinDiv)                                                                    \
  X(BinRem)                                                                    \
  X(BinShl)                                                                    \
  X(BinShr)                                                                    \
  X(BinAnd)                                                                    \
  X(BinOr)                                                                     \
  X(BinXor)                                                                    \
  X(BinCmpEq)                                                                  \
  X(BinCmpNe)                                                                  \
  X(BinCmpLt)                                                                  \
  X(BinCmpLe)                                                                  \
  X(BinCmpGt)                                                                  \
  X(BinCmpGe)                                                                  \
  X(UnNeg)                                                                     \
  X(UnNot)                                                                     \
  X(UnI2F)                                                                     \
  X(UnF2I)                                                                     \
  X(UnFBits)                                                                   \
  X(UnBitsF)                                                                   \
  X(Alloc)                                                                     \
  X(AllocArray)                                                                \
  X(LoadField)                                                                 \
  X(StoreField)                                                                \
  X(LoadStatic)                                                                \
  X(StoreStatic)                                                               \
  X(LoadElem)                                                                  \
  X(StoreElem)                                                                 \
  X(ArrayLen)                                                                  \
  X(CallDirect)                                                                \
  X(CallVirtual)                                                               \
  X(NativeCall)                                                                \
  X(Phase)                                                                     \
  X(Br)                                                                        \
  X(CondBrEq)                                                                  \
  X(CondBrNe)                                                                  \
  X(CondBrLt)                                                                  \
  X(CondBrLe)                                                                  \
  X(CondBrGt)                                                                  \
  X(CondBrGe)                                                                  \
  X(Return)                                                                    \
  X(ReturnVoid)

enum class DOpc : uint8_t {
#define LUD_X(N) N,
  LUD_DOPC_LIST(LUD_X)
#undef LUD_X
};

/// One pre-decoded instruction. 40 bytes, fixed size, stored contiguously
/// per function, so straight-line execution walks a dense array. Operand
/// meaning is per-opcode:
///  - A/B/C: register slots (A is usually the destination), except
///    StoreField/StoreElem (A = base) and calls (C = argument count).
///  - D: immediate u32 — field slot, global id, slot count, decoded branch
///    target, callee FuncId / MethodNameId, or the ArgPool offset of a
///    native call.
///  - Bits/Ptr: wide immediate — literal payload, ClassId, false-branch
///    target, call ArgPool offset, or the pre-bound NativeDecl.
///  - Orig: the source instruction, kept to feed profiler hooks and traps;
///    with an empty pipeline every use of it folds away.
struct DIns {
  const void *Handler = nullptr;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint8_t Op = 0;
  uint32_t D = 0;
  union {
    uint64_t Bits;
    const void *Ptr;
  };
  const Instruction *Orig = nullptr;

  DIns() : Bits(0) {}
};

/// A function's decoded body plus the flattened call-argument registers
/// (DIns is fixed-size, so variable-length argument lists live in a side
/// pool indexed by offset).
struct DecodedFunction {
  const Function *Fn = nullptr;
  std::vector<DIns> Ops;
  std::vector<Reg> ArgPool;
  uint32_t NRegs = 0;
  bool Ready = false;
};

template <typename ProfilerT> class ThreadedEngine {
public:
  ThreadedEngine(const Module &M, Heap &H, ProfilerT &P, RunConfig Cfg = {})
      : M(M), TheHeap(H), Prof(P), Cfg(Cfg) {
    assert(M.isFinalized() && "module must be finalized before execution");
    DFuncs.resize(M.functions().size());
    bindNatives();
  }

  /// Executes the module's entry function to completion (or trap/budget).
  /// Same result contract as Interpreter::run().
  RunResult run() {
    RunResult Res;
    NativeContext NCtx;
    NCtx.TheHeap = &TheHeap;
    NCtx.Print = Cfg.PrintStream;
    NCtx.Input = Cfg.Input;
    Ctx = &NCtx;

    Globals.assign(M.globals().size(), Value());
    size_t ObjectsBefore = TheHeap.numObjects();

    Prof.onRunStart(M, TheHeap);
    const Function *Entry = M.getFunction(M.getEntry());
    Prof.onEntryFrame(*Entry);

    Res.Status = loop(Res, Entry->getId());
    Res.SinkHash = NCtx.SinkHash;
    Res.ExecutedInstrs = Executed;
    Res.Calls = Calls;
    Res.PeakFrameDepth = PeakDepth;
    Res.ObjectsAllocated = TheHeap.numObjects() - ObjectsBefore;
    Prof.onRunEnd();
    Ctx = nullptr;
    return Res;
  }

private:
  /// Caller state saved across a call; the callee's registers live above
  /// the caller's in the shared register stack.
  struct DFrame {
    const DecodedFunction *DF;
    uint64_t Base;
    uint32_t RetPC;
    Reg RetDst;
  };

  void bindNatives() {
    const NativeRegistry &Reg =
        Cfg.Natives ? *Cfg.Natives : NativeRegistry::standard();
    Bound.assign(M.nativeNames().size(), nullptr);
    PhaseNative = kNoMethodName;
    for (size_t I = 0, E = M.nativeNames().size(); I != E; ++I) {
      const std::string &Name = M.nativeNames()[I];
      if (Name == kPhaseNativeName) {
        PhaseNative = NativeId(I);
        continue;
      }
      Bound[I] = Reg.find(Name);
    }
  }

  /// Both operands are ints (the dominant case in every workload): Kind
  /// Int is 0, so one OR replaces two three-way switches in asInt().
  static bool bothInt(const Value &L, const Value &R) {
    return (uint8_t(L.Kind) | uint8_t(R.Kind)) == 0;
  }

  /// evalValueCmp's integer branch, for operands already known to be ints.
  /// Op is a literal at every call site, so this folds to one compare.
  static bool intCmp(CmpOp Op, int64_t A, int64_t B) {
    switch (Op) {
    case CmpOp::Eq:
      return A == B;
    case CmpOp::Ne:
      return A != B;
    case CmpOp::Lt:
      return A < B;
    case CmpOp::Le:
      return A <= B;
    case CmpOp::Gt:
      return A > B;
    case CmpOp::Ge:
      return A >= B;
    }
    return false;
  }

  RunStatus trap(RunResult &Res, const Instruction &I, TrapKind K,
                 Reg FaultReg = kNoReg) {
    Res.Trap = K;
    Res.TrapInstr = I.getId();
    Res.TrapReg = FaultReg;
    Prof.onTrap(I, K, FaultReg);
    return RunStatus::Trapped;
  }

  void ensureRegs(uint64_t Needed) {
    if (RegStack.size() < Needed)
      RegStack.resize(std::max<uint64_t>(Needed, RegStack.size() * 2));
  }

  /// The decode memo: returns the function's decoded body, producing it on
  /// first touch.
  DecodedFunction &decodedFn(FuncId Id) {
    DecodedFunction &D = DFuncs[Id];
    if (__builtin_expect(!D.Ready, 0))
      decodeFunction(D, *M.getFunction(Id));
    return D;
  }

  void decodeFunction(DecodedFunction &D, const Function &Fn) {
    D.Fn = &Fn;
    D.NRegs = Fn.getNumRegs();
    // Pass 1: flat offsets of each block (one DIns per instruction), so
    // branch targets decode to absolute positions in the stream.
    std::vector<uint32_t> BlockStart(Fn.blocks().size(), 0);
    uint32_t N = 0;
    for (size_t B = 0, E = Fn.blocks().size(); B != E; ++B) {
      BlockStart[B] = N;
      N += uint32_t(Fn.blocks()[B]->insts().size());
    }
    D.Ops.reserve(N);
    for (const auto &BB : Fn.blocks())
      for (const auto &IP : BB->insts())
        D.Ops.push_back(decodeInst(D, *IP, BlockStart));
    D.Ready = true;
  }

  uint32_t poolArgs(DecodedFunction &D, const std::vector<Reg> &Args) {
    uint32_t Off = uint32_t(D.ArgPool.size());
    D.ArgPool.insert(D.ArgPool.end(), Args.begin(), Args.end());
    return Off;
  }

  DIns decodeInst(DecodedFunction &D, const Instruction &I,
                  const std::vector<uint32_t> &BlockStart) {
    DIns O;
    O.Orig = &I;
    DOpc Op = DOpc::ReturnVoid; // every switch arm overwrites this
    switch (I.getKind()) {
    case Instruction::Kind::Const: {
      const auto *C = cast<ConstInst>(&I);
      O.A = C->Dst;
      switch (C->Lit) {
      case ConstInst::LitKind::Int:
        Op = DOpc::ConstInt;
        O.Bits = uint64_t(C->IntVal);
        break;
      case ConstInst::LitKind::Float:
        Op = DOpc::ConstFloat;
        std::memcpy(&O.Bits, &C->FloatVal, sizeof(O.Bits));
        break;
      case ConstInst::LitKind::Null:
        Op = DOpc::ConstNull;
        break;
      }
      break;
    }
    case Instruction::Kind::Assign: {
      const auto *A = cast<AssignInst>(&I);
      Op = DOpc::Assign;
      O.A = A->Dst;
      O.B = A->Src;
      break;
    }
    case Instruction::Kind::Bin: {
      const auto *B = cast<BinInst>(&I);
      Op = DOpc(uint8_t(DOpc::BinAdd) + uint8_t(B->Op));
      O.A = B->Dst;
      O.B = B->Lhs;
      O.C = B->Rhs;
      break;
    }
    case Instruction::Kind::Un: {
      const auto *U = cast<UnInst>(&I);
      Op = DOpc(uint8_t(DOpc::UnNeg) + uint8_t(U->Op));
      O.A = U->Dst;
      O.B = U->Src;
      break;
    }
    case Instruction::Kind::Alloc: {
      const auto *A = cast<AllocInst>(&I);
      Op = DOpc::Alloc;
      O.A = A->Dst;
      O.D = M.getClass(A->Class)->NumSlots;
      O.Bits = A->Class;
      break;
    }
    case Instruction::Kind::AllocArray: {
      const auto *A = cast<AllocArrayInst>(&I);
      Op = DOpc::AllocArray;
      O.A = A->Dst;
      O.B = A->Len;
      O.D = uint32_t(A->Elem);
      break;
    }
    case Instruction::Kind::LoadField: {
      const auto *L = cast<LoadFieldInst>(&I);
      Op = DOpc::LoadField;
      O.A = L->Dst;
      O.B = L->Base;
      O.D = L->Slot;
      break;
    }
    case Instruction::Kind::StoreField: {
      const auto *S = cast<StoreFieldInst>(&I);
      Op = DOpc::StoreField;
      O.A = S->Base;
      O.B = S->Src;
      O.D = S->Slot;
      break;
    }
    case Instruction::Kind::LoadStatic: {
      const auto *L = cast<LoadStaticInst>(&I);
      Op = DOpc::LoadStatic;
      O.A = L->Dst;
      O.D = L->Global;
      break;
    }
    case Instruction::Kind::StoreStatic: {
      const auto *S = cast<StoreStaticInst>(&I);
      Op = DOpc::StoreStatic;
      O.A = S->Src;
      O.D = S->Global;
      break;
    }
    case Instruction::Kind::LoadElem: {
      const auto *L = cast<LoadElemInst>(&I);
      Op = DOpc::LoadElem;
      O.A = L->Dst;
      O.B = L->Base;
      O.C = L->Index;
      break;
    }
    case Instruction::Kind::StoreElem: {
      const auto *S = cast<StoreElemInst>(&I);
      Op = DOpc::StoreElem;
      O.A = S->Base;
      O.B = S->Index;
      O.C = S->Src;
      break;
    }
    case Instruction::Kind::ArrayLen: {
      const auto *A = cast<ArrayLenInst>(&I);
      Op = DOpc::ArrayLen;
      O.A = A->Dst;
      O.B = A->Base;
      break;
    }
    case Instruction::Kind::Call: {
      const auto *C = cast<CallInst>(&I);
      O.A = C->Dst;
      O.C = uint16_t(C->Args.size());
      O.Bits = poolArgs(D, C->Args);
      if (C->isVirtual()) {
        Op = DOpc::CallVirtual;
        O.D = C->Method;
      } else {
        Op = DOpc::CallDirect;
        O.D = C->Callee;
      }
      break;
    }
    case Instruction::Kind::NativeCall: {
      const auto *N = cast<NativeCallInst>(&I);
      if (N->Native == PhaseNative) {
        Op = DOpc::Phase;
        O.A = N->Args.empty() ? kNoReg : N->Args[0];
        break;
      }
      Op = DOpc::NativeCall;
      O.A = N->Dst;
      O.C = uint16_t(N->Args.size());
      O.D = poolArgs(D, N->Args);
      O.Ptr = Bound[N->Native]; // Null stays null: UnknownNative at use.
      break;
    }
    case Instruction::Kind::Br: {
      Op = DOpc::Br;
      O.D = BlockStart[cast<BrInst>(&I)->Target];
      break;
    }
    case Instruction::Kind::CondBr: {
      const auto *C = cast<CondBrInst>(&I);
      Op = DOpc(uint8_t(DOpc::CondBrEq) + uint8_t(C->Cmp));
      O.A = C->Lhs;
      O.B = C->Rhs;
      O.D = BlockStart[C->TrueBlock];
      O.Bits = BlockStart[C->FalseBlock];
      break;
    }
    case Instruction::Kind::Return: {
      const auto *R = cast<ReturnInst>(&I);
      if (R->Src == kNoReg) {
        Op = DOpc::ReturnVoid;
      } else {
        Op = DOpc::Return;
        O.A = R->Src;
      }
      break;
    }
    }
    O.Op = uint8_t(Op);
#if LUD_THREADED_GOTO
    O.Handler = LabelTable[O.Op];
#endif
    return O;
  }

  /// The threaded fetch-execute loop. Counter/budget ordering matches the
  /// interpreter exactly: budget is checked before each instruction, the
  /// instruction is counted before it executes (so a trapping instruction
  /// is counted, and BudgetExceeded stops *before* instruction N+1).
  RunStatus loop(RunResult &Res, FuncId EntryId) {
#if LUD_THREADED_GOTO
#define LUD_X(N) &&L_##N,
    static const void *const Labels[] = {LUD_DOPC_LIST(LUD_X)};
#undef LUD_X
    LabelTable = Labels;
#define LUD_OP(name) L_##name:
#define LUD_DISPATCH() goto *PC->Handler
#else
#define LUD_OP(name) case DOpc::name:
#define LUD_DISPATCH() goto Dispatch
#endif

// Advance to the instruction PC points at (callers position PC first).
// `Left` counts budget headroom downwards so the pre-instruction budget
// check and the executed-instruction count are one decrement: Left-- == 0
// is "Executed >= MaxInstructions", and a successful decrement *is* the
// "count before execute" step (instructions executed = Left0 - Left, which
// ExitSync folds back into the accumulating member).
#define LUD_NEXT()                                                             \
  do {                                                                         \
    if (__builtin_expect(Left-- == 0, 0)) {                                    \
      ++Left; /* undo the wrap so ExitSync's arithmetic is exact */            \
      St = RunStatus::BudgetExceeded;                                          \
      goto ExitSync;                                                           \
    }                                                                          \
    LUD_DISPATCH();                                                            \
  } while (0)

// Abandon the run with a trap at the DIns currently bound to `I`.
#define LUD_TRAP(K, FR)                                                        \
  do {                                                                         \
    St = trap(Res, *I.Orig, (K), (FR));                                        \
    goto ExitSync;                                                             \
  } while (0)

// Enter `CALLEE_D` from the call currently bound to `I` (argc in I.C,
// actuals at CArgs, result register I.A). Mind the resize: ensureRegs can
// move the register stack, so both base pointers are re-derived after it.
#define LUD_ENTER_FRAME(CALLEE_D)                                              \
  do {                                                                         \
    DecodedFunction &NewDF = (CALLEE_D);                                       \
    Frames.push_back({DF, CurBase, uint32_t(PC + 1 - Ops), Reg(I.A)});         \
    uint64_t NewBase = CurBase + DF->NRegs;                                    \
    ensureRegs(NewBase + NewDF.NRegs);                                         \
    Value *CallerR = RegStack.data() + CurBase;                                \
    Value *NewR = RegStack.data() + NewBase;                                   \
    for (uint32_t K = 0; K != I.C; ++K)                                        \
      NewR[K] = CallerR[CArgs[K]];                                             \
    std::fill(NewR + I.C, NewR + NewDF.NRegs, Value());                        \
    DF = &NewDF;                                                               \
    CurBase = NewBase;                                                         \
    R = NewR;                                                                  \
    Pool = DF->ArgPool.data();                                                 \
    Ops = DF->Ops.data();                                                      \
    PC = Ops;                                                                  \
    ++Depth;                                                                   \
    if (Depth > PeakL)                                                         \
      PeakL = Depth;                                                           \
  } while (0)

// The arithmetic Bin families, specialized per opcode so the type test and
// the operation are the only work left at run time.
#define LUD_BIN_ARITH(NAME, OPER)                                              \
  LUD_OP(Bin##NAME) {                                                          \
    const DIns &I = *PC;                                                       \
    const Value &L = R[I.B], &Rv = R[I.C];                                     \
    if (__builtin_expect(bothInt(L, Rv), 1))                                   \
      R[I.A] = Value::makeInt(L.I OPER Rv.I);                                  \
    else                                                                       \
      R[I.A] = (L.Kind == ValueKind::Float || Rv.Kind == ValueKind::Float)     \
                   ? Value::makeFloat(L.asFloat() OPER Rv.asFloat())           \
                   : Value::makeInt(L.asInt() OPER Rv.asInt());                \
    Prof.onBin(*cast<BinInst>(I.Orig));                                        \
    ++PC;                                                                      \
    LUD_NEXT();                                                                \
  }

#define LUD_BIN_INT(NAME, EXPR)                                                \
  LUD_OP(Bin##NAME) {                                                          \
    const DIns &I = *PC;                                                       \
    const Value &L = R[I.B], &Rv = R[I.C];                                     \
    int64_t Li, Ri;                                                            \
    if (__builtin_expect(bothInt(L, Rv), 1)) {                                 \
      Li = L.I;                                                                \
      Ri = Rv.I;                                                               \
    } else {                                                                   \
      Li = L.asInt();                                                          \
      Ri = Rv.asInt();                                                         \
    }                                                                          \
    R[I.A] = Value::makeInt(EXPR);                                             \
    Prof.onBin(*cast<BinInst>(I.Orig));                                        \
    ++PC;                                                                      \
    LUD_NEXT();                                                                \
  }

#define LUD_BIN_CMP(NAME)                                                      \
  LUD_OP(BinCmp##NAME) {                                                       \
    const DIns &I = *PC;                                                       \
    const Value &L = R[I.B], &Rv = R[I.C];                                     \
    bool T = __builtin_expect(bothInt(L, Rv), 1)                               \
                 ? intCmp(CmpOp::NAME, L.I, Rv.I)                              \
                 : evalValueCmp(CmpOp::NAME, L, Rv);                           \
    R[I.A] = Value::makeInt(T ? 1 : 0);                                        \
    Prof.onBin(*cast<BinInst>(I.Orig));                                        \
    ++PC;                                                                      \
    LUD_NEXT();                                                                \
  }

#define LUD_COND_BR(NAME)                                                      \
  LUD_OP(CondBr##NAME) {                                                       \
    const DIns &I = *PC;                                                       \
    const Value &L = R[I.A], &Rv = R[I.B];                                     \
    bool Taken = __builtin_expect(bothInt(L, Rv), 1)                           \
                     ? intCmp(CmpOp::NAME, L.I, Rv.I)                          \
                     : evalValueCmp(CmpOp::NAME, L, Rv);                       \
    Prof.onPredicate(*cast<CondBrInst>(I.Orig), Taken);                        \
    PC = Ops + (Taken ? uint64_t(I.D) : I.Bits);                               \
    LUD_NEXT();                                                                \
  }

#define LUD_RETURN_BODY(RET_EXPR)                                              \
  do {                                                                         \
    const DIns &I = *PC;                                                       \
    Value Ret = (RET_EXPR);                                                    \
    Prof.onReturn(*cast<ReturnInst>(I.Orig));                                  \
    --Depth;                                                                   \
    if (Depth == 0) {                                                          \
      Res.ReturnValue = Ret;                                                   \
      St = RunStatus::Finished;                                                \
      goto ExitSync;                                                           \
    }                                                                          \
    DFrame Fr = Frames.back();                                                 \
    Frames.pop_back();                                                         \
    DF = Fr.DF;                                                                \
    CurBase = Fr.Base;                                                         \
    R = RegStack.data() + CurBase;                                             \
    Pool = DF->ArgPool.data();                                                 \
    Ops = DF->Ops.data();                                                      \
    PC = Ops + Fr.RetPC;                                                       \
    if (Fr.RetDst != kNoReg)                                                   \
      R[Fr.RetDst] = Ret;                                                      \
    Prof.onReturnBound(Fr.RetDst);                                             \
    LUD_NEXT();                                                                \
  } while (0)

    // Hot state lives in locals; the members are synced once at exit so
    // repeated run() calls accumulate exactly like the interpreter's.
    RunStatus St = RunStatus::Finished;
    const uint64_t Budget = Cfg.MaxInstructions;
    const uint64_t Left0 = Budget > Executed ? Budget - Executed : 0;
    uint64_t Left = Left0;
    uint64_t CallsL = Calls;
    uint64_t PeakL = PeakDepth;
    size_t Depth = 0;
    Frames.clear();

    const DecodedFunction *DF = &decodedFn(EntryId);
    uint64_t CurBase = 0;
    ensureRegs(DF->NRegs);
    Value *R = RegStack.data();
    std::fill(R, R + DF->NRegs, Value());
    const Reg *Pool = DF->ArgPool.data();
    Value *G = Globals.data();
    const DIns *Ops = DF->Ops.data();
    const DIns *PC = Ops;
    Depth = 1;
    if (Depth > PeakL)
      PeakL = Depth;

    LUD_NEXT();

#if !LUD_THREADED_GOTO
  Dispatch:
    switch (DOpc(PC->Op)) {
#endif

    LUD_OP(ConstInt) {
      const DIns &I = *PC;
      R[I.A] = Value::makeInt(int64_t(I.Bits));
      Prof.onConst(*cast<ConstInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(ConstFloat) {
      const DIns &I = *PC;
      double F;
      std::memcpy(&F, &I.Bits, sizeof(F));
      R[I.A] = Value::makeFloat(F);
      Prof.onConst(*cast<ConstInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(ConstNull) {
      const DIns &I = *PC;
      R[I.A] = Value::null();
      Prof.onConst(*cast<ConstInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(Assign) {
      const DIns &I = *PC;
      R[I.A] = R[I.B];
      Prof.onAssign(*cast<AssignInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }

    LUD_BIN_ARITH(Add, +)
    LUD_BIN_ARITH(Sub, -)
    LUD_BIN_ARITH(Mul, *)

    LUD_OP(BinDiv) {
      const DIns &I = *PC;
      const Value &L = R[I.B], &Rv = R[I.C];
      if (__builtin_expect(bothInt(L, Rv), 1)) {
        if (Rv.I == 0)
          LUD_TRAP(TrapKind::DivByZero, kNoReg);
        R[I.A] = Value::makeInt(L.I / Rv.I);
      } else if (L.Kind == ValueKind::Float || Rv.Kind == ValueKind::Float) {
        R[I.A] = Value::makeFloat(L.asFloat() / Rv.asFloat());
      } else {
        if (Rv.asInt() == 0)
          LUD_TRAP(TrapKind::DivByZero, kNoReg);
        R[I.A] = Value::makeInt(L.asInt() / Rv.asInt());
      }
      Prof.onBin(*cast<BinInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(BinRem) {
      const DIns &I = *PC;
      const Value &L = R[I.B], &Rv = R[I.C];
      if (__builtin_expect(bothInt(L, Rv), 1)) {
        if (Rv.I == 0)
          LUD_TRAP(TrapKind::DivByZero, kNoReg);
        R[I.A] = Value::makeInt(L.I % Rv.I);
      } else if (L.Kind == ValueKind::Float || Rv.Kind == ValueKind::Float) {
        R[I.A] = Value::makeFloat(std::fmod(L.asFloat(), Rv.asFloat()));
      } else {
        if (Rv.asInt() == 0)
          LUD_TRAP(TrapKind::DivByZero, kNoReg);
        R[I.A] = Value::makeInt(L.asInt() % Rv.asInt());
      }
      Prof.onBin(*cast<BinInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }

    LUD_BIN_INT(Shl, int64_t(uint64_t(Li) << (Ri & 63)))
    LUD_BIN_INT(Shr, Li >> (Ri & 63))
    LUD_BIN_INT(And, Li & Ri)
    LUD_BIN_INT(Or, Li | Ri)
    LUD_BIN_INT(Xor, Li ^ Ri)

    LUD_BIN_CMP(Eq)
    LUD_BIN_CMP(Ne)
    LUD_BIN_CMP(Lt)
    LUD_BIN_CMP(Le)
    LUD_BIN_CMP(Gt)
    LUD_BIN_CMP(Ge)

    LUD_OP(UnNeg) {
      const DIns &I = *PC;
      const Value &S = R[I.B];
      R[I.A] = S.Kind == ValueKind::Float ? Value::makeFloat(-S.F)
                                          : Value::makeInt(-S.asInt());
      Prof.onUn(*cast<UnInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(UnNot) {
      const DIns &I = *PC;
      R[I.A] = Value::makeInt(~R[I.B].asInt());
      Prof.onUn(*cast<UnInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(UnI2F) {
      const DIns &I = *PC;
      R[I.A] = Value::makeFloat(R[I.B].asFloat());
      Prof.onUn(*cast<UnInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(UnF2I) {
      const DIns &I = *PC;
      R[I.A] = Value::makeInt(R[I.B].asInt());
      Prof.onUn(*cast<UnInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(UnFBits) {
      const DIns &I = *PC;
      double F = R[I.B].asFloat();
      int64_t Bits;
      std::memcpy(&Bits, &F, sizeof(Bits));
      R[I.A] = Value::makeInt(Bits);
      Prof.onUn(*cast<UnInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(UnBitsF) {
      const DIns &I = *PC;
      int64_t Bits = R[I.B].asInt();
      double F;
      std::memcpy(&F, &Bits, sizeof(F));
      R[I.A] = Value::makeFloat(F);
      Prof.onUn(*cast<UnInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }

    LUD_OP(Alloc) {
      const DIns &I = *PC;
      ObjId O = TheHeap.allocObject(ClassId(I.Bits), I.D);
      R[I.A] = Value::makeRef(O);
      Prof.onAlloc(*cast<AllocInst>(I.Orig), O);
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(AllocArray) {
      const DIns &I = *PC;
      int64_t Len = R[I.B].asInt();
      if (Len < 0)
        LUD_TRAP(TrapKind::OutOfBounds, Reg(I.B));
      ObjId O = TheHeap.allocArray(TypeKind(I.D), uint32_t(Len));
      R[I.A] = Value::makeRef(O);
      Prof.onAllocArray(*cast<AllocArrayInst>(I.Orig), O);
      ++PC;
      LUD_NEXT();
    }

    LUD_OP(LoadField) {
      const DIns &I = *PC;
      const Value &Base = R[I.B];
      if (Base.isNullRef() || !Base.isRef())
        LUD_TRAP(TrapKind::NullDeref, Reg(I.B));
      HeapObject &O = TheHeap.obj(Base.R);
      assert(I.D < O.Slots.size() && "field slot out of range");
      R[I.A] = O.Slots[I.D];
      Prof.onLoadField(*cast<LoadFieldInst>(I.Orig), Base.R, R[I.A]);
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(StoreField) {
      const DIns &I = *PC;
      const Value &Base = R[I.A];
      if (Base.isNullRef() || !Base.isRef())
        LUD_TRAP(TrapKind::NullDeref, Reg(I.A));
      HeapObject &O = TheHeap.obj(Base.R);
      assert(I.D < O.Slots.size() && "field slot out of range");
      O.Slots[I.D] = R[I.B];
      Prof.onStoreField(*cast<StoreFieldInst>(I.Orig), Base.R, R[I.B]);
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(LoadStatic) {
      const DIns &I = *PC;
      R[I.A] = G[I.D];
      Prof.onLoadStatic(*cast<LoadStaticInst>(I.Orig), R[I.A]);
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(StoreStatic) {
      const DIns &I = *PC;
      G[I.D] = R[I.A];
      Prof.onStoreStatic(*cast<StoreStaticInst>(I.Orig), R[I.A]);
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(LoadElem) {
      const DIns &I = *PC;
      const Value &Base = R[I.B];
      if (Base.isNullRef() || !Base.isRef())
        LUD_TRAP(TrapKind::NullDeref, Reg(I.B));
      HeapObject &O = TheHeap.obj(Base.R);
      int64_t Idx = R[I.C].asInt();
      if (Idx < 0 || uint64_t(Idx) >= O.Slots.size())
        LUD_TRAP(TrapKind::OutOfBounds, Reg(I.C));
      R[I.A] = O.Slots[Idx];
      Prof.onLoadElem(*cast<LoadElemInst>(I.Orig), Base.R, uint32_t(Idx),
                      R[I.A]);
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(StoreElem) {
      const DIns &I = *PC;
      const Value &Base = R[I.A];
      if (Base.isNullRef() || !Base.isRef())
        LUD_TRAP(TrapKind::NullDeref, Reg(I.A));
      HeapObject &O = TheHeap.obj(Base.R);
      int64_t Idx = R[I.B].asInt();
      if (Idx < 0 || uint64_t(Idx) >= O.Slots.size())
        LUD_TRAP(TrapKind::OutOfBounds, Reg(I.B));
      O.Slots[Idx] = R[I.C];
      Prof.onStoreElem(*cast<StoreElemInst>(I.Orig), Base.R, uint32_t(Idx),
                       R[I.C]);
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(ArrayLen) {
      const DIns &I = *PC;
      const Value &Base = R[I.B];
      if (Base.isNullRef() || !Base.isRef())
        LUD_TRAP(TrapKind::NullDeref, Reg(I.B));
      R[I.A] = Value::makeInt(int64_t(TheHeap.obj(Base.R).Slots.size()));
      Prof.onArrayLen(*cast<ArrayLenInst>(I.Orig), Base.R);
      ++PC;
      LUD_NEXT();
    }

    LUD_OP(CallDirect) {
      const DIns &I = *PC;
      DecodedFunction &CalleeD = decodedFn(FuncId(I.D));
      const Function *Callee = CalleeD.Fn;
      const Reg *CArgs = Pool + I.Bits;
      ObjId Receiver = kNullObj;
      if (Callee->isMethod() && I.C != 0) {
        const Value &Recv = R[CArgs[0]];
        if (Recv.isRef() && !Recv.isNullRef())
          Receiver = Recv.R;
      }
      if (Depth >= Cfg.MaxFrames)
        LUD_TRAP(TrapKind::StackOverflow, kNoReg);
      Prof.onCallEnter(*cast<CallInst>(I.Orig), *Callee, Receiver);
      ++CallsL;
      LUD_ENTER_FRAME(CalleeD);
      LUD_NEXT();
    }
    LUD_OP(CallVirtual) {
      const DIns &I = *PC;
      const Reg *CArgs = Pool + I.Bits;
      const Value &Recv = R[CArgs[0]];
      if (Recv.isNullRef() || !Recv.isRef())
        LUD_TRAP(TrapKind::NullDeref, CArgs[0]);
      ObjId Receiver = Recv.R;
      const HeapObject &RO = TheHeap.obj(Receiver);
      if (RO.IsArray)
        LUD_TRAP(TrapKind::BadVirtualCall, CArgs[0]);
      FuncId Target = M.lookupMethod(RO.Class, MethodNameId(I.D));
      if (Target == kNoFunc)
        LUD_TRAP(TrapKind::BadVirtualCall, CArgs[0]);
      DecodedFunction &CalleeD = decodedFn(Target);
      if (Depth >= Cfg.MaxFrames)
        LUD_TRAP(TrapKind::StackOverflow, kNoReg);
      Prof.onCallEnter(*cast<CallInst>(I.Orig), *CalleeD.Fn, Receiver);
      ++CallsL;
      LUD_ENTER_FRAME(CalleeD);
      LUD_NEXT();
    }

    LUD_OP(NativeCall) {
      const DIns &I = *PC;
      const auto *ND = static_cast<const NativeDecl *>(I.Ptr);
      if (!ND)
        LUD_TRAP(TrapKind::UnknownNative, kNoReg);
      const Reg *NArgs = Pool + I.D;
      ArgScratch.clear();
      for (uint32_t K = 0; K != I.C; ++K)
        ArgScratch.push_back(R[NArgs[K]]);
      Value RV = ND->Fn(*Ctx, ArgScratch.data(), ArgScratch.size());
      if (I.A != kNoReg)
        R[I.A] = ND->HasResult ? RV : Value();
      Prof.onNativeCall(*cast<NativeCallInst>(I.Orig));
      ++PC;
      LUD_NEXT();
    }
    LUD_OP(Phase) {
      const DIns &I = *PC;
      int64_t Phase = I.A == kNoReg ? 0 : R[I.A].asInt();
      Prof.onPhase(Phase);
      ++PC;
      LUD_NEXT();
    }

    LUD_OP(Br) {
      PC = Ops + PC->D;
      LUD_NEXT();
    }

    LUD_COND_BR(Eq)
    LUD_COND_BR(Ne)
    LUD_COND_BR(Lt)
    LUD_COND_BR(Le)
    LUD_COND_BR(Gt)
    LUD_COND_BR(Ge)

    LUD_OP(Return) { LUD_RETURN_BODY(R[PC->A]); }
    LUD_OP(ReturnVoid) { LUD_RETURN_BODY(Value()); }

#if !LUD_THREADED_GOTO
    }
    lud_unreachable("unknown decoded opcode");
#endif

  ExitSync:
    Executed += Left0 - Left;
    Calls = CallsL;
    PeakDepth = PeakL;
    return St;

#undef LUD_OP
#undef LUD_DISPATCH
#undef LUD_NEXT
#undef LUD_TRAP
#undef LUD_ENTER_FRAME
#undef LUD_BIN_ARITH
#undef LUD_BIN_INT
#undef LUD_BIN_CMP
#undef LUD_COND_BR
#undef LUD_RETURN_BODY
  }

  const Module &M;
  Heap &TheHeap;
  ProfilerT &Prof;
  RunConfig Cfg;
  std::vector<DecodedFunction> DFuncs;
  std::vector<Value> RegStack;
  std::vector<DFrame> Frames;
  std::vector<Value> Globals;
  std::vector<const NativeDecl *> Bound;
  std::vector<Value> ArgScratch;
  NativeContext *Ctx = nullptr;
  NativeId PhaseNative = kNoMethodName;
  /// Handler table of the executing loop; set before the entry function is
  /// decoded (decodeInst reads it to pre-bind DIns::Handler).
  const void *const *LabelTable = nullptr;
  uint64_t Executed = 0;
  uint64_t Calls = 0;
  uint64_t PeakDepth = 0;
};

/// Runs \p M on the engine selected by \p E — the one branch point behind
/// which both backends hide. Every driver-level caller funnels through
/// this, so profiler pipelines never care which engine executes them.
template <typename ProfilerT>
RunResult runWithEngine(EngineKind E, const Module &M, Heap &H, ProfilerT &P,
                        const RunConfig &Cfg) {
  if (E == EngineKind::Threaded) {
    ThreadedEngine<ProfilerT> Eng(M, H, P, Cfg);
    return Eng.run();
  }
  Interpreter<ProfilerT> Interp(M, H, P, Cfg);
  return Interp.run();
}

} // namespace lud

#endif // LUD_RUNTIME_THREADEDENGINE_H
