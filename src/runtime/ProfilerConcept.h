//===- runtime/ProfilerConcept.h - Profiler policy interface ---*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hook interface a profiler policy must provide to Interpreter<P>, and
/// NoopProfiler, the all-inline-empty baseline. Compiling the interpreter
/// once against NoopProfiler and once against an instrumenting profiler is
/// how the repo mirrors the paper's "stock JVM vs modified JVM" overhead
/// comparison: the baseline pays literally zero instrumentation cost.
///
/// Hooks fire *after* the interpreter performed the operation (object
/// allocated, value loaded/stored), except onCallEnter, which fires before
/// the callee frame is pushed so the profiler can read caller-side shadows.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_RUNTIME_PROFILERCONCEPT_H
#define LUD_RUNTIME_PROFILERCONCEPT_H

#include "ir/Instruction.h"
#include "runtime/Value.h"

namespace lud {

class Function;
class Heap;
class Module;

enum class TrapKind : uint8_t {
  None,
  NullDeref,
  OutOfBounds,
  DivByZero,
  BadVirtualCall,
  StackOverflow,
  UnknownNative,
};

/// Returns a printable name ("null dereference", ...).
const char *trapKindName(TrapKind K);

/// The do-nothing profiler: the uninstrumented baseline. Also documents the
/// full hook surface; custom profilers may derive from it and override
/// (statically) only what they need.
struct NoopProfiler {
  void onRunStart(const Module &, Heap &) {}
  void onRunEnd() {}
  /// Entry-function frame creation (no call site exists for it).
  void onEntryFrame(const Function &) {}
  /// Phase marker executed (selective tracking, Section 4.1).
  void onPhase(int64_t) {}

  void onConst(const ConstInst &) {}
  void onAssign(const AssignInst &) {}
  void onBin(const BinInst &) {}
  void onUn(const UnInst &) {}
  void onAlloc(const AllocInst &, ObjId) {}
  void onAllocArray(const AllocArrayInst &, ObjId) {}
  void onLoadField(const LoadFieldInst &, ObjId /*Base*/,
                   const Value & /*Loaded*/) {}
  void onStoreField(const StoreFieldInst &, ObjId /*Base*/,
                    const Value & /*Stored*/) {}
  void onLoadStatic(const LoadStaticInst &, const Value & /*Loaded*/) {}
  void onStoreStatic(const StoreStaticInst &, const Value & /*Stored*/) {}
  void onLoadElem(const LoadElemInst &, ObjId /*Base*/, uint32_t /*Index*/,
                  const Value & /*Loaded*/) {}
  void onStoreElem(const StoreElemInst &, ObjId /*Base*/, uint32_t /*Index*/,
                   const Value & /*Stored*/) {}
  void onArrayLen(const ArrayLenInst &, ObjId /*Base*/) {}
  void onPredicate(const CondBrInst &, bool /*Taken*/) {}
  void onNativeCall(const NativeCallInst &) {}
  /// Before the callee frame is pushed; Receiver is null for direct calls
  /// to non-methods.
  void onCallEnter(const CallInst &, const Function & /*Callee*/,
                   ObjId /*Receiver*/) {}
  /// A return executed in the (still current) callee frame.
  void onReturn(const ReturnInst &) {}
  /// After the callee frame was popped; Dst is the caller register
  /// receiving the result (kNoReg when discarded).
  void onReturnBound(Reg /*Dst*/) {}
  void onTrap(const Instruction &, TrapKind, Reg /*FaultReg*/) {}
};

} // namespace lud

#endif // LUD_RUNTIME_PROFILERCONCEPT_H
