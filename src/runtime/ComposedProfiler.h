//===- runtime/ComposedProfiler.h - Profiler pipeline fan-out --*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ComposedProfiler<Ps...>: a profiler policy that fans every hook of the
/// ProfilerConcept surface out to a tuple of member profilers, in template
/// -parameter order. This is what makes the paper's framework claim concrete
/// in this codebase: the interpreter is instantiated once per *pipeline
/// shape*, not once per client analysis, and a single interpretation pass
/// feeds the slicing substrate plus any set of client profilers.
///
/// Stages are held by pointer and a null stage is skipped at every hook, so
/// one static pipeline type serves every runtime-selected subset of clients
/// (ProfileSession enables clients by passing nullptr for the others) at the
/// cost of one pointer test per hook per stage.
///
/// The empty composition ComposedProfiler<> has all-empty inline hooks and
/// is therefore exactly the NoopProfiler baseline: composing zero profilers
/// costs zero, preserving the stock-JVM overhead property the Noop baseline
/// exists for.
///
/// Ordering contract: stages run in declaration order. The slicing
/// substrate must be the first stage when clients that read heap object
/// tags (environment P, written by the substrate's ALLOC rule) are
/// composed after it — a client hook may then assume the substrate already
/// processed every *earlier* event, in particular that objects allocated
/// under tracking carry their tag by the time the client sees a later load,
/// store, or call on them.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_RUNTIME_COMPOSEDPROFILER_H
#define LUD_RUNTIME_COMPOSEDPROFILER_H

#include "runtime/ProfilerConcept.h"

#include <tuple>
#include <type_traits>

namespace lud {

template <typename... Ps> class ComposedProfiler {
public:
  /// Empty pipeline (only well-formed to *use* when every stage pointer
  /// would be null anyway; with an empty pack this is the Noop baseline).
  ComposedProfiler() : Parts() {}
  /// Pipeline over the given stages, in declaration order. A null pointer
  /// disables its stage. (Constrained away for the empty pack, where it
  /// would collide with the default constructor.)
  template <bool NonEmpty = (sizeof...(Ps) > 0),
            typename = std::enable_if_t<NonEmpty>>
  explicit ComposedProfiler(Ps *...Stages) : Parts(Stages...) {}

  void onRunStart(const Module &M, Heap &H) {
    each([&](auto &P) { P.onRunStart(M, H); });
  }
  void onRunEnd() {
    each([&](auto &P) { P.onRunEnd(); });
  }
  void onEntryFrame(const Function &F) {
    each([&](auto &P) { P.onEntryFrame(F); });
  }
  void onPhase(int64_t Phase) {
    each([&](auto &P) { P.onPhase(Phase); });
  }
  void onConst(const ConstInst &I) {
    each([&](auto &P) { P.onConst(I); });
  }
  void onAssign(const AssignInst &I) {
    each([&](auto &P) { P.onAssign(I); });
  }
  void onBin(const BinInst &I) {
    each([&](auto &P) { P.onBin(I); });
  }
  void onUn(const UnInst &I) {
    each([&](auto &P) { P.onUn(I); });
  }
  void onAlloc(const AllocInst &I, ObjId O) {
    each([&](auto &P) { P.onAlloc(I, O); });
  }
  void onAllocArray(const AllocArrayInst &I, ObjId O) {
    each([&](auto &P) { P.onAllocArray(I, O); });
  }
  void onLoadField(const LoadFieldInst &I, ObjId Base, const Value &Loaded) {
    each([&](auto &P) { P.onLoadField(I, Base, Loaded); });
  }
  void onStoreField(const StoreFieldInst &I, ObjId Base, const Value &Stored) {
    each([&](auto &P) { P.onStoreField(I, Base, Stored); });
  }
  void onLoadStatic(const LoadStaticInst &I, const Value &Loaded) {
    each([&](auto &P) { P.onLoadStatic(I, Loaded); });
  }
  void onStoreStatic(const StoreStaticInst &I, const Value &Stored) {
    each([&](auto &P) { P.onStoreStatic(I, Stored); });
  }
  void onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                  const Value &Loaded) {
    each([&](auto &P) { P.onLoadElem(I, Base, Index, Loaded); });
  }
  void onStoreElem(const StoreElemInst &I, ObjId Base, uint32_t Index,
                   const Value &Stored) {
    each([&](auto &P) { P.onStoreElem(I, Base, Index, Stored); });
  }
  void onArrayLen(const ArrayLenInst &I, ObjId Base) {
    each([&](auto &P) { P.onArrayLen(I, Base); });
  }
  void onPredicate(const CondBrInst &I, bool Taken) {
    each([&](auto &P) { P.onPredicate(I, Taken); });
  }
  void onNativeCall(const NativeCallInst &I) {
    each([&](auto &P) { P.onNativeCall(I); });
  }
  void onCallEnter(const CallInst &I, const Function &Callee, ObjId Receiver) {
    each([&](auto &P) { P.onCallEnter(I, Callee, Receiver); });
  }
  void onReturn(const ReturnInst &I) {
    each([&](auto &P) { P.onReturn(I); });
  }
  void onReturnBound(Reg Dst) {
    each([&](auto &P) { P.onReturnBound(Dst); });
  }
  void onTrap(const Instruction &I, TrapKind K, Reg FaultReg) {
    each([&](auto &P) { P.onTrap(I, K, FaultReg); });
  }

private:
  template <typename Fn> void each(Fn &&F) {
    std::apply([&](auto *...P) { ((P ? (void)F(*P) : void()), ...); }, Parts);
  }

  std::tuple<Ps *...> Parts;
};

} // namespace lud

#endif // LUD_RUNTIME_COMPOSEDPROFILER_H
