//===- runtime/Runtime.cpp - Misc runtime helpers --------------------------===//

#include "runtime/Engine.h"
#include "runtime/ProfilerConcept.h"

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace lud;

const char *lud::engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Interp:
    return "interp";
  case EngineKind::Threaded:
    return "threaded";
  }
  lud_unreachable("unknown EngineKind");
}

const char *lud::validEngineNames() { return "interp, threaded"; }

bool lud::parseEngineKind(const std::string &Name, EngineKind &Out) {
  if (Name == "interp") {
    Out = EngineKind::Interp;
    return true;
  }
  if (Name == "threaded") {
    Out = EngineKind::Threaded;
    return true;
  }
  return false;
}

EngineKind lud::defaultEngineKind() {
  static const EngineKind Cached = [] {
    EngineKind K = EngineKind::Interp;
    // A typo here must not silently re-select the default engine (it made
    // a mis-spelled CI leg re-test the interpreter); warn once, naming the
    // bad value and the accepted spellings. An empty value means unset.
    if (const char *Env = std::getenv("LUD_ENGINE"))
      if (*Env && !parseEngineKind(Env, K))
        std::fprintf(stderr,
                     "warning: LUD_ENGINE='%s' is not a known engine "
                     "(valid: %s); using %s\n",
                     Env, validEngineNames(), engineKindName(K));
    return K;
  }();
  return Cached;
}

const char *lud::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "none";
  case TrapKind::NullDeref:
    return "null dereference";
  case TrapKind::OutOfBounds:
    return "array index out of bounds";
  case TrapKind::DivByZero:
    return "division by zero";
  case TrapKind::BadVirtualCall:
    return "no matching virtual method";
  case TrapKind::StackOverflow:
    return "call stack overflow";
  case TrapKind::UnknownNative:
    return "unbound native method";
  }
  lud_unreachable("unknown TrapKind");
}
