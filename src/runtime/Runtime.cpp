//===- runtime/Runtime.cpp - Misc runtime helpers --------------------------===//

#include "runtime/ProfilerConcept.h"

#include "support/ErrorHandling.h"

using namespace lud;

const char *lud::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "none";
  case TrapKind::NullDeref:
    return "null dereference";
  case TrapKind::OutOfBounds:
    return "array index out of bounds";
  case TrapKind::DivByZero:
    return "division by zero";
  case TrapKind::BadVirtualCall:
    return "no matching virtual method";
  case TrapKind::StackOverflow:
    return "call stack overflow";
  case TrapKind::UnknownNative:
    return "unbound native method";
  }
  lud_unreachable("unknown TrapKind");
}
