//===- runtime/Interpreter.h - The execution engine ------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter<ProfilerT>: executes a finalized Module against a Heap,
/// invoking profiler hooks at every instruction. The profiler is a template
/// policy so the uninstrumented baseline (NoopProfiler) pays nothing; this
/// is the J9 stand-in the paper's runtime analyses are implemented against.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_RUNTIME_INTERPRETER_H
#define LUD_RUNTIME_INTERPRETER_H

#include "ir/Module.h"
#include "runtime/Heap.h"
#include "runtime/Natives.h"
#include "runtime/ProfilerConcept.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace lud {

/// Per-run knobs.
struct RunConfig {
  /// Safety valve; the run stops with BudgetExceeded when hit.
  uint64_t MaxInstructions = ~uint64_t(0);
  /// Call-stack depth limit (StackOverflow trap beyond it).
  uint32_t MaxFrames = 1 << 14;
  /// Input tape for the `input` native.
  const std::vector<int64_t> *Input = nullptr;
  /// When set, `print` writes here.
  OutStream *PrintStream = nullptr;
  /// Native bindings; defaults to NativeRegistry::standard().
  const NativeRegistry *Natives = nullptr;
};

enum class RunStatus : uint8_t { Finished, Trapped, BudgetExceeded };

/// Comparison semantics shared by every execution engine: promote to float
/// when either side is a float, otherwise compare as int64 (refs compare by
/// id). Both Interpreter and ThreadedEngine evaluate predicates and cmp*
/// instructions through this one definition, so the engines cannot drift.
inline bool evalValueCmp(CmpOp Op, const Value &L, const Value &R) {
  if (L.Kind == ValueKind::Float || R.Kind == ValueKind::Float) {
    double A = L.asFloat(), B = R.asFloat();
    switch (Op) {
    case CmpOp::Eq:
      return A == B;
    case CmpOp::Ne:
      return A != B;
    case CmpOp::Lt:
      return A < B;
    case CmpOp::Le:
      return A <= B;
    case CmpOp::Gt:
      return A > B;
    case CmpOp::Ge:
      return A >= B;
    }
  }
  int64_t A = L.asInt(), B = R.asInt();
  switch (Op) {
  case CmpOp::Eq:
    return A == B;
  case CmpOp::Ne:
    return A != B;
  case CmpOp::Lt:
    return A < B;
  case CmpOp::Le:
    return A <= B;
  case CmpOp::Gt:
    return A > B;
  case CmpOp::Ge:
    return A >= B;
  }
  lud_unreachable("unknown CmpOp");
}

struct RunResult {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  /// Faulting instruction and (for NullDeref) the null base register.
  InstrId TrapInstr = kNoInstr;
  Reg TrapReg = kNoReg;
  /// All executed instruction instances (the paper's I).
  uint64_t ExecutedInstrs = 0;
  /// Interpreted (non-native) calls entered.
  uint64_t Calls = 0;
  /// Deepest frame stack observed (telemetry; deterministic per module).
  uint64_t PeakFrameDepth = 0;
  /// Value returned by the entry function (zero if void).
  Value ReturnValue;
  /// Fold of everything printed/sunk (output observability).
  uint64_t SinkHash = 0;
  /// Objects allocated during the run.
  uint64_t ObjectsAllocated = 0;
};

template <typename ProfilerT> class Interpreter {
public:
  Interpreter(const Module &M, Heap &H, ProfilerT &P, RunConfig Cfg = {})
      : M(M), TheHeap(H), Prof(P), Cfg(Cfg) {
    assert(M.isFinalized() && "module must be finalized before execution");
    bindNatives();
  }

  /// Executes the module's entry function to completion (or trap/budget).
  RunResult run() {
    RunResult Res;
    NativeContext NCtx;
    NCtx.TheHeap = &TheHeap;
    NCtx.Print = Cfg.PrintStream;
    NCtx.Input = Cfg.Input;
    Ctx = &NCtx;

    Globals.assign(M.globals().size(), Value());
    size_t ObjectsBefore = TheHeap.numObjects();

    Prof.onRunStart(M, TheHeap);
    const Function *Entry = M.getFunction(M.getEntry());
    Prof.onEntryFrame(*Entry);
    Depth = 0;
    pushFrame(Entry, kNoReg);

    Res.Status = loop(Res);
    Res.SinkHash = NCtx.SinkHash;
    Res.ExecutedInstrs = Executed;
    Res.Calls = Calls;
    Res.PeakFrameDepth = PeakDepth;
    Res.ObjectsAllocated = TheHeap.numObjects() - ObjectsBefore;
    Prof.onRunEnd();
    Ctx = nullptr;
    return Res;
  }

private:
  struct Frame {
    const Function *Fn;
    uint32_t Block = 0;
    uint32_t Ip = 0;
    Reg RetDst;
    std::vector<Value> Regs;
  };

  void bindNatives() {
    const NativeRegistry &Reg =
        Cfg.Natives ? *Cfg.Natives : NativeRegistry::standard();
    Bound.assign(M.nativeNames().size(), nullptr);
    PhaseNative = kNoMethodName;
    for (size_t I = 0, E = M.nativeNames().size(); I != E; ++I) {
      const std::string &Name = M.nativeNames()[I];
      if (Name == kPhaseNativeName) {
        PhaseNative = NativeId(I);
        continue;
      }
      Bound[I] = Reg.find(Name);
    }
  }

  /// Frames are a depth-indexed stack over a reused pool: returning pops
  /// the logical depth but keeps each frame's register buffer, so a call
  /// re-entering that depth assigns in place instead of mallocing a fresh
  /// vector (the dominant allocation in call-heavy workloads).
  /// \p NumArgs registers at the front are left uninitialized: every call
  /// site copies the actuals into them immediately after pushing, so only
  /// the non-parameter tail needs clearing.
  void pushFrame(const Function *Fn, Reg RetDst, uint32_t NumArgs = 0) {
    if (Frames.size() <= Depth)
      Frames.emplace_back();
    Frame &F = Frames[Depth];
    F.Fn = Fn;
    F.Block = 0;
    F.Ip = 0;
    F.RetDst = RetDst;
    F.Regs.resize(Fn->getNumRegs());
    std::fill(F.Regs.begin() + NumArgs, F.Regs.end(), Value());
    ++Depth;
    if (Depth > PeakDepth)
      PeakDepth = Depth;
  }

  /// Reports a trap into \p Res and notifies the profiler.
  RunStatus trap(RunResult &Res, const Instruction &I, TrapKind K,
                 Reg FaultReg = kNoReg) {
    Res.Trap = K;
    Res.TrapInstr = I.getId();
    Res.TrapReg = FaultReg;
    Prof.onTrap(I, K, FaultReg);
    return RunStatus::Trapped;
  }

  static bool evalCmp(CmpOp Op, const Value &L, const Value &R) {
    return evalValueCmp(Op, L, R);
  }

  /// The fetch-execute loop. Returns the final status; on Finished the
  /// entry function's return value is stored into \p Res.
  RunStatus loop(RunResult &Res) {
    // The current frame and basic block are loop-carried locals, refreshed
    // only when control flow changes them (branch, call, return): the
    // straight-line fetch path then costs one indexed load instead of
    // re-walking Frames -> Fn -> block table every instruction.
    Frame *FP = &Frames[Depth - 1];
    const BasicBlock *BB = FP->Fn->getBlock(FP->Block);
    while (true) {
      if (Executed >= Cfg.MaxInstructions)
        return RunStatus::BudgetExceeded;
      Frame &F = *FP;
      assert(F.Ip < BB->insts().size() && "fell off a basic block");
      const Instruction *I = BB->insts()[F.Ip].get();
      ++Executed;

      switch (I->getKind()) {
      case Instruction::Kind::Const: {
        const auto *C = cast<ConstInst>(I);
        switch (C->Lit) {
        case ConstInst::LitKind::Int:
          F.Regs[C->Dst] = Value::makeInt(C->IntVal);
          break;
        case ConstInst::LitKind::Float:
          F.Regs[C->Dst] = Value::makeFloat(C->FloatVal);
          break;
        case ConstInst::LitKind::Null:
          F.Regs[C->Dst] = Value::null();
          break;
        }
        Prof.onConst(*C);
        break;
      }
      case Instruction::Kind::Assign: {
        const auto *A = cast<AssignInst>(I);
        F.Regs[A->Dst] = F.Regs[A->Src];
        Prof.onAssign(*A);
        break;
      }
      case Instruction::Kind::Bin: {
        const auto *B = cast<BinInst>(I);
        if (!execBin(F, *B))
          return trap(Res, *I, TrapKind::DivByZero);
        Prof.onBin(*B);
        break;
      }
      case Instruction::Kind::Un: {
        const auto *U = cast<UnInst>(I);
        execUn(F, *U);
        Prof.onUn(*U);
        break;
      }
      case Instruction::Kind::Alloc: {
        const auto *A = cast<AllocInst>(I);
        uint32_t Slots = M.getClass(A->Class)->NumSlots;
        ObjId O = TheHeap.allocObject(A->Class, Slots);
        F.Regs[A->Dst] = Value::makeRef(O);
        Prof.onAlloc(*A, O);
        break;
      }
      case Instruction::Kind::AllocArray: {
        const auto *A = cast<AllocArrayInst>(I);
        int64_t Len = F.Regs[A->Len].asInt();
        if (Len < 0)
          return trap(Res, *I, TrapKind::OutOfBounds, A->Len);
        ObjId O = TheHeap.allocArray(A->Elem, uint32_t(Len));
        F.Regs[A->Dst] = Value::makeRef(O);
        Prof.onAllocArray(*A, O);
        break;
      }
      case Instruction::Kind::LoadField: {
        const auto *L = cast<LoadFieldInst>(I);
        const Value &Base = F.Regs[L->Base];
        if (Base.isNullRef() || !Base.isRef())
          return trap(Res, *I, TrapKind::NullDeref, L->Base);
        HeapObject &O = TheHeap.obj(Base.R);
        assert(L->Slot < O.Slots.size() && "field slot out of range");
        F.Regs[L->Dst] = O.Slots[L->Slot];
        Prof.onLoadField(*L, Base.R, F.Regs[L->Dst]);
        break;
      }
      case Instruction::Kind::StoreField: {
        const auto *S = cast<StoreFieldInst>(I);
        const Value &Base = F.Regs[S->Base];
        if (Base.isNullRef() || !Base.isRef())
          return trap(Res, *I, TrapKind::NullDeref, S->Base);
        HeapObject &O = TheHeap.obj(Base.R);
        assert(S->Slot < O.Slots.size() && "field slot out of range");
        O.Slots[S->Slot] = F.Regs[S->Src];
        Prof.onStoreField(*S, Base.R, F.Regs[S->Src]);
        break;
      }
      case Instruction::Kind::LoadStatic: {
        const auto *L = cast<LoadStaticInst>(I);
        F.Regs[L->Dst] = Globals[L->Global];
        Prof.onLoadStatic(*L, F.Regs[L->Dst]);
        break;
      }
      case Instruction::Kind::StoreStatic: {
        const auto *S = cast<StoreStaticInst>(I);
        Globals[S->Global] = F.Regs[S->Src];
        Prof.onStoreStatic(*S, F.Regs[S->Src]);
        break;
      }
      case Instruction::Kind::LoadElem: {
        const auto *L = cast<LoadElemInst>(I);
        const Value &Base = F.Regs[L->Base];
        if (Base.isNullRef() || !Base.isRef())
          return trap(Res, *I, TrapKind::NullDeref, L->Base);
        HeapObject &O = TheHeap.obj(Base.R);
        int64_t Idx = F.Regs[L->Index].asInt();
        if (Idx < 0 || uint64_t(Idx) >= O.Slots.size())
          return trap(Res, *I, TrapKind::OutOfBounds, L->Index);
        F.Regs[L->Dst] = O.Slots[Idx];
        Prof.onLoadElem(*L, Base.R, uint32_t(Idx), F.Regs[L->Dst]);
        break;
      }
      case Instruction::Kind::StoreElem: {
        const auto *S = cast<StoreElemInst>(I);
        const Value &Base = F.Regs[S->Base];
        if (Base.isNullRef() || !Base.isRef())
          return trap(Res, *I, TrapKind::NullDeref, S->Base);
        HeapObject &O = TheHeap.obj(Base.R);
        int64_t Idx = F.Regs[S->Index].asInt();
        if (Idx < 0 || uint64_t(Idx) >= O.Slots.size())
          return trap(Res, *I, TrapKind::OutOfBounds, S->Index);
        O.Slots[Idx] = F.Regs[S->Src];
        Prof.onStoreElem(*S, Base.R, uint32_t(Idx), F.Regs[S->Src]);
        break;
      }
      case Instruction::Kind::ArrayLen: {
        const auto *A = cast<ArrayLenInst>(I);
        const Value &Base = F.Regs[A->Base];
        if (Base.isNullRef() || !Base.isRef())
          return trap(Res, *I, TrapKind::NullDeref, A->Base);
        F.Regs[A->Dst] =
            Value::makeInt(int64_t(TheHeap.obj(Base.R).Slots.size()));
        Prof.onArrayLen(*A, Base.R);
        break;
      }
      case Instruction::Kind::Call: {
        const auto *C = cast<CallInst>(I);
        const Function *Callee;
        ObjId Receiver = kNullObj;
        if (C->isVirtual()) {
          const Value &Recv = F.Regs[C->Args[0]];
          if (Recv.isNullRef() || !Recv.isRef())
            return trap(Res, *I, TrapKind::NullDeref, C->Args[0]);
          Receiver = Recv.R;
          const HeapObject &O = TheHeap.obj(Receiver);
          if (O.IsArray)
            return trap(Res, *I, TrapKind::BadVirtualCall, C->Args[0]);
          FuncId Target = M.lookupMethod(O.Class, C->Method);
          if (Target == kNoFunc)
            return trap(Res, *I, TrapKind::BadVirtualCall, C->Args[0]);
          Callee = M.getFunction(Target);
        } else {
          Callee = M.getFunction(C->Callee);
          if (Callee->isMethod() && !C->Args.empty()) {
            const Value &Recv = F.Regs[C->Args[0]];
            if (Recv.isRef() && !Recv.isNullRef())
              Receiver = Recv.R;
          }
        }
        if (C->Args.size() != Callee->getNumParams())
          lud_unreachable("call arity mismatch survived verification");
        if (Depth >= Cfg.MaxFrames)
          return trap(Res, *I, TrapKind::StackOverflow);
        Prof.onCallEnter(*C, *Callee, Receiver);
        ++Calls;
        // Advance the caller past the call before pushing.
        ++F.Ip;
        pushFrame(Callee, C->Dst, uint32_t(C->Args.size()));
        Frame &NF = Frames[Depth - 1];
        Frame &CF = Frames[Depth - 2];
        for (size_t A = 0, E = C->Args.size(); A != E; ++A)
          NF.Regs[A] = CF.Regs[C->Args[A]];
        FP = &NF;
        BB = NF.Fn->getBlock(0);
        continue; // Do not bump Ip again.
      }
      case Instruction::Kind::NativeCall: {
        const auto *N = cast<NativeCallInst>(I);
        if (N->Native == PhaseNative) {
          int64_t Phase =
              N->Args.empty() ? 0 : F.Regs[N->Args[0]].asInt();
          Prof.onPhase(Phase);
          break;
        }
        const NativeDecl *D = Bound[N->Native];
        if (!D)
          return trap(Res, *I, TrapKind::UnknownNative);
        ArgScratch.clear();
        for (Reg A : N->Args)
          ArgScratch.push_back(F.Regs[A]);
        Value R = D->Fn(*Ctx, ArgScratch.data(), ArgScratch.size());
        if (N->Dst != kNoReg)
          F.Regs[N->Dst] = D->HasResult ? R : Value();
        Prof.onNativeCall(*N);
        break;
      }
      case Instruction::Kind::Br: {
        F.Block = cast<BrInst>(I)->Target;
        F.Ip = 0;
        BB = F.Fn->getBlock(F.Block);
        continue;
      }
      case Instruction::Kind::CondBr: {
        const auto *C = cast<CondBrInst>(I);
        bool Taken = evalCmp(C->Cmp, F.Regs[C->Lhs], F.Regs[C->Rhs]);
        Prof.onPredicate(*C, Taken);
        F.Block = Taken ? C->TrueBlock : C->FalseBlock;
        F.Ip = 0;
        BB = F.Fn->getBlock(F.Block);
        continue;
      }
      case Instruction::Kind::Return: {
        const auto *R = cast<ReturnInst>(I);
        Value Ret = R->Src == kNoReg ? Value() : F.Regs[R->Src];
        Prof.onReturn(*R);
        Reg Dst = F.RetDst;
        --Depth;
        if (Depth == 0) {
          Res.ReturnValue = Ret;
          return RunStatus::Finished;
        }
        FP = &Frames[Depth - 1];
        BB = FP->Fn->getBlock(FP->Block);
        if (Dst != kNoReg)
          FP->Regs[Dst] = Ret;
        Prof.onReturnBound(Dst);
        continue;
      }
      }
      ++F.Ip;
    }
  }

  bool execBin(Frame &F, const BinInst &B) {
    const Value &L = F.Regs[B.Lhs];
    const Value &R = F.Regs[B.Rhs];
    bool Fl = L.Kind == ValueKind::Float || R.Kind == ValueKind::Float;
    switch (B.Op) {
    case BinOp::Add:
      F.Regs[B.Dst] = Fl ? Value::makeFloat(L.asFloat() + R.asFloat())
                         : Value::makeInt(L.asInt() + R.asInt());
      return true;
    case BinOp::Sub:
      F.Regs[B.Dst] = Fl ? Value::makeFloat(L.asFloat() - R.asFloat())
                         : Value::makeInt(L.asInt() - R.asInt());
      return true;
    case BinOp::Mul:
      F.Regs[B.Dst] = Fl ? Value::makeFloat(L.asFloat() * R.asFloat())
                         : Value::makeInt(L.asInt() * R.asInt());
      return true;
    case BinOp::Div:
      if (Fl) {
        F.Regs[B.Dst] = Value::makeFloat(L.asFloat() / R.asFloat());
        return true;
      }
      if (R.asInt() == 0)
        return false;
      F.Regs[B.Dst] = Value::makeInt(L.asInt() / R.asInt());
      return true;
    case BinOp::Rem:
      if (Fl) {
        F.Regs[B.Dst] = Value::makeFloat(std::fmod(L.asFloat(), R.asFloat()));
        return true;
      }
      if (R.asInt() == 0)
        return false;
      F.Regs[B.Dst] = Value::makeInt(L.asInt() % R.asInt());
      return true;
    case BinOp::Shl:
      F.Regs[B.Dst] = Value::makeInt(int64_t(uint64_t(L.asInt())
                                             << (R.asInt() & 63)));
      return true;
    case BinOp::Shr:
      F.Regs[B.Dst] = Value::makeInt(L.asInt() >> (R.asInt() & 63));
      return true;
    case BinOp::And:
      F.Regs[B.Dst] = Value::makeInt(L.asInt() & R.asInt());
      return true;
    case BinOp::Or:
      F.Regs[B.Dst] = Value::makeInt(L.asInt() | R.asInt());
      return true;
    case BinOp::Xor:
      F.Regs[B.Dst] = Value::makeInt(L.asInt() ^ R.asInt());
      return true;
    case BinOp::CmpEq:
      F.Regs[B.Dst] = Value::makeInt(evalCmp(CmpOp::Eq, L, R));
      return true;
    case BinOp::CmpNe:
      F.Regs[B.Dst] = Value::makeInt(evalCmp(CmpOp::Ne, L, R));
      return true;
    case BinOp::CmpLt:
      F.Regs[B.Dst] = Value::makeInt(evalCmp(CmpOp::Lt, L, R));
      return true;
    case BinOp::CmpLe:
      F.Regs[B.Dst] = Value::makeInt(evalCmp(CmpOp::Le, L, R));
      return true;
    case BinOp::CmpGt:
      F.Regs[B.Dst] = Value::makeInt(evalCmp(CmpOp::Gt, L, R));
      return true;
    case BinOp::CmpGe:
      F.Regs[B.Dst] = Value::makeInt(evalCmp(CmpOp::Ge, L, R));
      return true;
    }
    lud_unreachable("unknown BinOp");
  }

  void execUn(Frame &F, const UnInst &U) {
    const Value &S = F.Regs[U.Src];
    switch (U.Op) {
    case UnOp::Neg:
      F.Regs[U.Dst] = S.Kind == ValueKind::Float
                          ? Value::makeFloat(-S.F)
                          : Value::makeInt(-S.asInt());
      return;
    case UnOp::Not:
      F.Regs[U.Dst] = Value::makeInt(~S.asInt());
      return;
    case UnOp::I2F:
      F.Regs[U.Dst] = Value::makeFloat(S.asFloat());
      return;
    case UnOp::F2I:
      F.Regs[U.Dst] = Value::makeInt(S.asInt());
      return;
    case UnOp::FBits: {
      double D = S.asFloat();
      int64_t Bits;
      std::memcpy(&Bits, &D, sizeof(Bits));
      F.Regs[U.Dst] = Value::makeInt(Bits);
      return;
    }
    case UnOp::BitsF: {
      int64_t Bits = S.asInt();
      double D;
      std::memcpy(&D, &Bits, sizeof(D));
      F.Regs[U.Dst] = Value::makeFloat(D);
      return;
    }
    }
    lud_unreachable("unknown UnOp");
  }

  const Module &M;
  Heap &TheHeap;
  ProfilerT &Prof;
  RunConfig Cfg;
  std::vector<Frame> Frames;
  size_t Depth = 0;
  std::vector<Value> Globals;
  std::vector<const NativeDecl *> Bound;
  std::vector<Value> ArgScratch;
  NativeContext *Ctx = nullptr;
  NativeId PhaseNative = kNoMethodName;
  uint64_t Executed = 0;
  uint64_t Calls = 0;
  uint64_t PeakDepth = 0;
};

/// Convenience: one-shot execution with a fresh heap.
template <typename ProfilerT>
RunResult runModule(const Module &M, ProfilerT &P, RunConfig Cfg = {}) {
  Heap H;
  Interpreter<ProfilerT> Interp(M, H, P, Cfg);
  return Interp.run();
}

} // namespace lud

#endif // LUD_RUNTIME_INTERPRETER_H
