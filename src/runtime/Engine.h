//===- runtime/Engine.h - Execution engine selection -----------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EngineKind names the two execution backends behind the profiler policy
/// template: the tree-walking reference interpreter (runtime/Interpreter.h)
/// and the pre-decoded direct-threaded engine (runtime/ThreadedEngine.h).
/// Both produce byte-identical Gcosts, client reports and run facts; the
/// threaded engine is the fast baseline the overhead experiment of
/// EXPERIMENTS.md divides by. Sessions default to defaultEngineKind(), which
/// honors the LUD_ENGINE environment variable so a whole test run can be
/// flipped onto either backend without touching any call site.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_RUNTIME_ENGINE_H
#define LUD_RUNTIME_ENGINE_H

#include <cstdint>
#include <string>

namespace lud {

enum class EngineKind : uint8_t {
  /// Tree-walking reference interpreter (runtime/Interpreter.h).
  Interp,
  /// Pre-decoded direct-threaded engine (runtime/ThreadedEngine.h).
  Threaded,
};

/// Printable engine name: "interp" or "threaded".
const char *engineKindName(EngineKind K);

/// Comma-separated list of accepted engine names, for diagnostics.
const char *validEngineNames();

/// Parses an engine name ("interp" or "threaded") into \p Out. Returns
/// false on an unknown name.
bool parseEngineKind(const std::string &Name, EngineKind &Out);

/// The engine sessions use when nothing is requested explicitly: the value
/// of the LUD_ENGINE environment variable when set to a valid engine name,
/// otherwise EngineKind::Interp. Read once and cached.
EngineKind defaultEngineKind();

} // namespace lud

#endif // LUD_RUNTIME_ENGINE_H
