//===- runtime/Heap.h - Object heap ----------------------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple arena heap of objects and arrays with dense ids. Objects carry a
/// profiler-managed tag word: the context-annotated allocation site the
/// paper stores in the shadow header (environment P of Figure 4). There is
/// no garbage collection; DaCapo-style runs are bounded and the paper's
/// analyses never require reclamation (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_RUNTIME_HEAP_H
#define LUD_RUNTIME_HEAP_H

#include "ir/Ids.h"
#include "ir/Type.h"
#include "runtime/Value.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace lud {

/// No-tag sentinel for objects allocated before tracking was enabled.
inline constexpr uint64_t kNoTag = ~uint64_t(0);

/// One heap cell: a class instance or a one-dimensional array.
struct HeapObject {
  ClassId Class = kNoClass; // kNoClass for arrays.
  TypeKind ElemKind = TypeKind::Int;
  bool IsArray = false;
  /// Context-annotated allocation site (environment P); written by the
  /// profiler's ALLOC rule, kNoTag when allocated untracked.
  uint64_t Tag = kNoTag;
  std::vector<Value> Slots;
};

/// The object store. Ids are dense and start at 1 (0 is null).
class Heap {
public:
  /// Allocates a class instance with \p NumSlots zeroed fields.
  ObjId allocObject(ClassId Class, uint32_t NumSlots) {
    Objects.emplace_back();
    HeapObject &O = Objects.back();
    O.Class = Class;
    O.Slots.assign(NumSlots, Value());
    return ObjId(Objects.size() - 1);
  }

  /// Allocates an array of \p Len zeroed elements.
  ObjId allocArray(TypeKind Elem, uint32_t Len) {
    Objects.emplace_back();
    HeapObject &O = Objects.back();
    O.IsArray = true;
    O.ElemKind = Elem;
    O.Slots.assign(Len, Elem == TypeKind::Ref ? Value::null() : Value());
    return ObjId(Objects.size() - 1);
  }

  HeapObject &obj(ObjId Id) {
    assert(Id != kNullObj && Id < Objects.size() && "bad object id");
    return Objects[Id];
  }
  const HeapObject &obj(ObjId Id) const {
    assert(Id != kNullObj && Id < Objects.size() && "bad object id");
    return Objects[Id];
  }

  /// Number of objects ever allocated (the paper's object counts).
  size_t numObjects() const { return Objects.size() - 1; }
  /// Largest valid id + 1; useful for dense side tables.
  size_t idBound() const { return Objects.size(); }

  void reset() {
    Objects.clear();
    Objects.emplace_back(); // Slot 0: null.
  }

  Heap() { reset(); }

private:
  std::vector<HeapObject> Objects;
};

} // namespace lud

#endif // LUD_RUNTIME_HEAP_H
