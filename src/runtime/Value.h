//===- runtime/Value.h - Dynamically typed runtime values ------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value universe: 64-bit integers, doubles, and object
/// references. Object id 0 is the null reference.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_RUNTIME_VALUE_H
#define LUD_RUNTIME_VALUE_H

#include <cstdint>

namespace lud {

/// Dense heap object identifier; 0 is null.
using ObjId = uint32_t;
inline constexpr ObjId kNullObj = 0;

enum class ValueKind : uint8_t { Int, Float, Ref };

/// A dynamically typed runtime value. Registers, fields, array elements and
/// globals all hold Values; fresh locations are integer zero.
struct Value {
  ValueKind Kind = ValueKind::Int;
  union {
    int64_t I;
    double F;
    ObjId R;
  };

  Value() : I(0) {}

  static Value makeInt(int64_t V) {
    Value X;
    X.Kind = ValueKind::Int;
    X.I = V;
    return X;
  }
  static Value makeFloat(double V) {
    Value X;
    X.Kind = ValueKind::Float;
    X.F = V;
    return X;
  }
  static Value makeRef(ObjId O) {
    Value X;
    X.Kind = ValueKind::Ref;
    X.R = O;
    return X;
  }
  static Value null() { return makeRef(kNullObj); }

  bool isRef() const { return Kind == ValueKind::Ref; }
  bool isNullRef() const { return Kind == ValueKind::Ref && R == kNullObj; }

  /// Numeric view as double (refs read as their id).
  double asFloat() const {
    switch (Kind) {
    case ValueKind::Float:
      return F;
    case ValueKind::Int:
      return double(I);
    case ValueKind::Ref:
      return double(R);
    }
    return 0;
  }
  /// Numeric view as int64 (floats truncate, refs read as their id).
  int64_t asInt() const {
    switch (Kind) {
    case ValueKind::Int:
      return I;
    case ValueKind::Float:
      return int64_t(F);
    case ValueKind::Ref:
      return int64_t(R);
    }
    return 0;
  }
};

} // namespace lud

#endif // LUD_RUNTIME_VALUE_H
