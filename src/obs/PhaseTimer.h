//===- obs/PhaseTimer.h - RAII phase spans ---------------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wall-time spans for the pipeline's phases (parse -> interpret ->
/// merge -> analyze -> report). A span adds its elapsed nanoseconds to the
/// counter `phase.<name>.nanos` and bumps `phase.<name>.spans`, so a
/// registry accumulates both total time and entry count per phase.
///
/// A null registry disables the span entirely — no clock read, no name
/// lookup — which is how disabled telemetry compiles down to a pointer
/// test at each phase boundary (phases are coarse; there is deliberately
/// no per-instruction span).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_OBS_PHASETIMER_H
#define LUD_OBS_PHASETIMER_H

#include "obs/Metrics.h"

#include <chrono>
#include <string>

namespace lud {
namespace obs {

class PhaseTimer {
public:
  /// Opens a span for \p Phase (e.g. "interpret"). Null \p R is a no-op.
  PhaseTimer(MetricsRegistry *R, std::string_view Phase) : R(R) {
    if (!R)
      return;
    std::string Base = "phase." + std::string(Phase);
    NanosId = R->counter(Base + ".nanos", Unit::Nanos);
    SpansId = R->counter(Base + ".spans", Unit::Count);
    T0 = std::chrono::steady_clock::now();
  }

  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

  /// Closes the span early (idempotent; the destructor is then a no-op).
  void stop() {
    if (!R)
      return;
    auto T1 = std::chrono::steady_clock::now();
    R->add(NanosId,
           uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        T1 - T0)
                        .count()));
    R->add(SpansId, 1);
    R = nullptr;
  }

  ~PhaseTimer() { stop(); }

private:
  MetricsRegistry *R;
  MetricId NanosId = kNoMetric;
  MetricId SpansId = kNoMetric;
  std::chrono::steady_clock::time_point T0;
};

} // namespace obs
} // namespace lud

#endif // LUD_OBS_PHASETIMER_H
