//===- obs/Metrics.h - Profiler self-telemetry registry --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Telemetry for the profiler itself: the paper's evaluation (Section 4,
/// Table 1) reports what the *profiler* spends — event counts, Gcost
/// node/edge growth, shadow-heap footprint, per-phase overhead — and this
/// registry is where the reproduction keeps those numbers.
///
/// A MetricsRegistry is a flat, append-only table of named metrics:
///
///   - **counters**: monotonically accumulated with add() (instructions
///     executed, phase nanoseconds, sessions run);
///   - **gauges**: set() from current state (Gcost node counts, shadow
///     memory bytes, peak frame depth);
///   - **histograms**: power-of-two buckets — observe(v) lands in bucket
///     bit_width(v), so bucket i counts samples in [2^(i-1), 2^i).
///
/// Concurrency model: registries are **per shard** and never shared
/// between threads — each ProfileSession owns one, exactly as each shard
/// owns its SlicingProfiler — so every bump is a plain increment with no
/// atomics or locks on any path. After the pool drains, the per-shard
/// registries fold in shard-index order through mergeFrom(), mirroring
/// SlicingProfiler::mergeFrom: counters sum, gauges apply their declared
/// merge policy, histograms sum bucket-wise. Because shard runs are
/// deterministic and every policy is order-insensitive, the folded
/// registry is identical whatever the thread count; only Unit::Nanos
/// metrics (wall time) vary run to run, and every exporter can exclude
/// them for byte-exact comparison.
///
/// Metric ids are dense indices in registration order; hot callers
/// register once and keep the id, so a bump never hashes a name. The
/// export schema ("lud.stats.v1") is documented in docs/OBSERVABILITY.md
/// and consumed by bench/BenchUtil.h and the CI stats artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_OBS_METRICS_H
#define LUD_OBS_METRICS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lud {

class OutStream;

namespace obs {

using MetricId = uint32_t;
inline constexpr MetricId kNoMetric = 0xFFFFFFFF;

enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

/// What the value measures; Nanos marks wall-time metrics, which exporters
/// can exclude (they are the only nondeterministic values in a registry).
enum class Unit : uint8_t { Count, Bytes, Nanos };

/// How a gauge folds across shards. Counters always Sum and histograms
/// always sum bucket-wise.
enum class Merge : uint8_t { Sum, Max, Last };

/// Number of power-of-two histogram buckets: bucket 0 holds zero samples,
/// bucket i holds samples in [2^(i-1), 2^i), bucket 64 holds >= 2^63.
inline constexpr unsigned kHistBuckets = 65;

class MetricsRegistry {
public:
  /// Registers (or re-finds) a counter. Re-registering an existing name
  /// returns the same id; kind and unit must agree.
  MetricId counter(std::string_view Name, Unit U = Unit::Count);
  /// Registers (or re-finds) a gauge with the given fold policy.
  MetricId gauge(std::string_view Name, Unit U = Unit::Count,
                 Merge M = Merge::Last);
  /// Registers (or re-finds) a histogram.
  MetricId histogram(std::string_view Name, Unit U = Unit::Count);

  /// Counter bump (also legal on gauges for running totals).
  void add(MetricId Id, uint64_t Delta) { Metrics[Id].Value += Delta; }
  /// Gauge assignment.
  void set(MetricId Id, uint64_t V) { Metrics[Id].Value = V; }
  /// Gauge assignment keeping the maximum seen (peak tracking).
  void setMax(MetricId Id, uint64_t V) {
    if (V > Metrics[Id].Value)
      Metrics[Id].Value = V;
  }
  /// Histogram sample.
  void observe(MetricId Id, uint64_t Sample);
  /// Zeroes a metric (histograms drop their buckets). Used by state-derived
  /// metrics that are recomputed from scratch after a run or a merge.
  void clear(MetricId Id);

  uint64_t value(MetricId Id) const { return Metrics[Id].Value; }
  /// Histogram aggregates (zero for scalar metrics).
  uint64_t histCount(MetricId Id) const { return Metrics[Id].Value; }
  uint64_t histSum(MetricId Id) const { return Metrics[Id].Sum; }

  /// Id registered under \p Name, or kNoMetric.
  MetricId find(std::string_view Name) const;
  size_t numMetrics() const { return Metrics.size(); }
  const std::string &name(MetricId Id) const { return Metrics[Id].Name; }
  MetricKind kind(MetricId Id) const { return Metrics[Id].Kind; }

  /// Folds \p O into this registry in metric order: metrics absent here are
  /// registered (appended), counters and Merge::Sum gauges sum, Merge::Max
  /// gauges keep the maximum, Merge::Last gauges take O's value, histograms
  /// sum bucket-wise. \p O is treated as the later of two sequential runs,
  /// exactly like the profiler mergeFrom family.
  void mergeFrom(const MetricsRegistry &O);

  /// Writes the "lud.stats.v1" JSON document. \p IncludeTiming false drops
  /// Unit::Nanos metrics, leaving only deterministic values (the form the
  /// cross-thread-count equivalence test compares byte for byte).
  void writeJson(OutStream &OS, bool IncludeTiming = true) const;
  /// CSV: "name,kind,unit,value,sum" rows (histograms: value = sample
  /// count; buckets are JSON-only).
  void writeCsv(OutStream &OS, bool IncludeTiming = true) const;
  /// Human-readable table for terminal use.
  void writeText(OutStream &OS) const;

private:
  struct Metric {
    std::string Name;
    MetricKind Kind = MetricKind::Counter;
    Unit U = Unit::Count;
    Merge M = Merge::Sum;
    /// Counter/gauge value; histogram sample count.
    uint64_t Value = 0;
    /// Histogram sample sum.
    uint64_t Sum = 0;
    /// Histogram buckets (empty until the first observe()).
    std::vector<uint64_t> Buckets;
  };

  MetricId intern(std::string_view Name, MetricKind K, Unit U, Merge M);

  std::vector<Metric> Metrics;
  std::unordered_map<std::string, MetricId> ByName;
};

} // namespace obs
} // namespace lud

#endif // LUD_OBS_METRICS_H
