//===- obs/Metrics.cpp - Profiler self-telemetry registry ------------------===//

#include "obs/Metrics.h"

#include "support/ErrorHandling.h"
#include "support/OutStream.h"

#include <algorithm>
#include <cassert>

using namespace lud;
using namespace lud::obs;

namespace {

unsigned bucketOf(uint64_t Sample) {
  unsigned B = 0;
  while (Sample) {
    ++B;
    Sample >>= 1;
  }
  return B; // bit_width: 0 for 0, 64 for the top bit.
}

const char *kindName(MetricKind K) {
  switch (K) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  lud_unreachable("unknown MetricKind");
}

const char *unitName(Unit U) {
  switch (U) {
  case Unit::Count:
    return "count";
  case Unit::Bytes:
    return "bytes";
  case Unit::Nanos:
    return "nanos";
  }
  lud_unreachable("unknown Unit");
}

} // namespace

MetricId MetricsRegistry::intern(std::string_view Name, MetricKind K, Unit U,
                                 Merge M) {
  auto It = ByName.find(std::string(Name));
  if (It != ByName.end()) {
    assert(Metrics[It->second].Kind == K && Metrics[It->second].U == U &&
           "metric re-registered with a different kind or unit");
    return It->second;
  }
  MetricId Id = MetricId(Metrics.size());
  Metrics.emplace_back();
  Metrics.back().Name = std::string(Name);
  Metrics.back().Kind = K;
  Metrics.back().U = U;
  Metrics.back().M = M;
  ByName.emplace(Metrics.back().Name, Id);
  return Id;
}

MetricId MetricsRegistry::counter(std::string_view Name, Unit U) {
  return intern(Name, MetricKind::Counter, U, Merge::Sum);
}

MetricId MetricsRegistry::gauge(std::string_view Name, Unit U, Merge M) {
  return intern(Name, MetricKind::Gauge, U, M);
}

MetricId MetricsRegistry::histogram(std::string_view Name, Unit U) {
  return intern(Name, MetricKind::Histogram, U, Merge::Sum);
}

void MetricsRegistry::observe(MetricId Id, uint64_t Sample) {
  Metric &M = Metrics[Id];
  if (M.Buckets.empty())
    M.Buckets.assign(kHistBuckets, 0);
  ++M.Buckets[bucketOf(Sample)];
  ++M.Value;
  M.Sum += Sample;
}

void MetricsRegistry::clear(MetricId Id) {
  Metric &M = Metrics[Id];
  M.Value = 0;
  M.Sum = 0;
  M.Buckets.clear();
}

MetricId MetricsRegistry::find(std::string_view Name) const {
  auto It = ByName.find(std::string(Name));
  return It == ByName.end() ? kNoMetric : It->second;
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &O) {
  for (const Metric &Theirs : O.Metrics) {
    MetricId Id = intern(Theirs.Name, Theirs.Kind, Theirs.U, Theirs.M);
    Metric &Mine = Metrics[Id];
    switch (Theirs.Kind) {
    case MetricKind::Counter:
      Mine.Value += Theirs.Value;
      break;
    case MetricKind::Gauge:
      switch (Theirs.M) {
      case Merge::Sum:
        Mine.Value += Theirs.Value;
        break;
      case Merge::Max:
        Mine.Value = std::max(Mine.Value, Theirs.Value);
        break;
      case Merge::Last:
        Mine.Value = Theirs.Value;
        break;
      }
      break;
    case MetricKind::Histogram:
      Mine.Value += Theirs.Value;
      Mine.Sum += Theirs.Sum;
      if (!Theirs.Buckets.empty()) {
        if (Mine.Buckets.empty())
          Mine.Buckets.assign(kHistBuckets, 0);
        for (unsigned B = 0; B != kHistBuckets; ++B)
          Mine.Buckets[B] += Theirs.Buckets[B];
      }
      break;
    }
  }
}

void MetricsRegistry::writeJson(OutStream &OS, bool IncludeTiming) const {
  OS << "{\"schema\": \"lud.stats.v1\", \"metrics\": [";
  bool First = true;
  for (const Metric &M : Metrics) {
    if (!IncludeTiming && M.U == Unit::Nanos)
      continue;
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << "  {\"name\": \"" << M.Name << "\", \"kind\": \""
       << kindName(M.Kind) << "\", \"unit\": \"" << unitName(M.U) << "\"";
    if (M.Kind == MetricKind::Histogram) {
      OS << ", \"count\": " << M.Value << ", \"sum\": " << M.Sum
         << ", \"buckets\": [";
      // Sparse [bucket, count] pairs: bucket i covers [2^(i-1), 2^i).
      bool FirstB = true;
      for (unsigned B = 0; B != unsigned(M.Buckets.size()); ++B) {
        if (!M.Buckets[B])
          continue;
        OS << (FirstB ? "" : ", ") << "[" << B << ", " << M.Buckets[B] << "]";
        FirstB = false;
      }
      OS << "]}";
    } else {
      OS << ", \"value\": " << M.Value << "}";
    }
  }
  OS << "\n]}\n";
}

void MetricsRegistry::writeCsv(OutStream &OS, bool IncludeTiming) const {
  OS << "name,kind,unit,value,sum\n";
  for (const Metric &M : Metrics) {
    if (!IncludeTiming && M.U == Unit::Nanos)
      continue;
    OS << M.Name << "," << kindName(M.Kind) << "," << unitName(M.U) << ","
       << M.Value << ",";
    if (M.Kind == MetricKind::Histogram)
      OS << M.Sum;
    OS << "\n";
  }
}

void MetricsRegistry::writeText(OutStream &OS) const {
  size_t Width = 8;
  for (const Metric &M : Metrics)
    Width = std::max(Width, M.Name.size());
  for (const Metric &M : Metrics) {
    OS << "  ";
    // Left-justify the name into the measured column.
    OS << M.Name;
    for (size_t Pad = M.Name.size(); Pad < Width + 2; ++Pad)
      OS << ' ';
    if (M.Kind == MetricKind::Histogram) {
      OS << M.Value << " samples, sum " << M.Sum;
    } else if (M.U == Unit::Nanos) {
      OS.printFixed(double(M.Value) / 1e6, 3);
      OS << " ms";
    } else if (M.U == Unit::Bytes) {
      OS.printFixed(double(M.Value) / 1024.0, 1);
      OS << " KB";
    } else {
      OS << M.Value;
    }
    OS << "\n";
  }
}
