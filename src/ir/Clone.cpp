//===- ir/Clone.cpp - Module cloning with instruction filters --------------===//

#include "ir/Clone.h"

#include "ir/Module.h"
#include "support/ErrorHandling.h"

using namespace lud;

Instruction *lud::cloneInstr(const Instruction &I) {
  switch (I.getKind()) {
  case Instruction::Kind::Const: {
    const auto *C = cast<ConstInst>(&I);
    switch (C->Lit) {
    case ConstInst::LitKind::Int:
      return ConstInst::makeInt(C->Dst, C->IntVal);
    case ConstInst::LitKind::Float:
      return ConstInst::makeFloat(C->Dst, C->FloatVal);
    case ConstInst::LitKind::Null:
      return ConstInst::makeNull(C->Dst);
    }
    lud_unreachable("unknown literal kind");
  }
  case Instruction::Kind::Assign: {
    const auto *A = cast<AssignInst>(&I);
    return new AssignInst(A->Dst, A->Src);
  }
  case Instruction::Kind::Bin: {
    const auto *B = cast<BinInst>(&I);
    return new BinInst(B->Op, B->Dst, B->Lhs, B->Rhs);
  }
  case Instruction::Kind::Un: {
    const auto *U = cast<UnInst>(&I);
    return new UnInst(U->Op, U->Dst, U->Src);
  }
  case Instruction::Kind::Alloc: {
    const auto *A = cast<AllocInst>(&I);
    return new AllocInst(A->Dst, A->Class);
  }
  case Instruction::Kind::AllocArray: {
    const auto *A = cast<AllocArrayInst>(&I);
    return new AllocArrayInst(A->Dst, A->Elem, A->Len);
  }
  case Instruction::Kind::LoadField: {
    const auto *L = cast<LoadFieldInst>(&I);
    return new LoadFieldInst(L->Dst, L->Base, L->Class, L->Slot);
  }
  case Instruction::Kind::StoreField: {
    const auto *S = cast<StoreFieldInst>(&I);
    return new StoreFieldInst(S->Base, S->Class, S->Slot, S->Src);
  }
  case Instruction::Kind::LoadStatic: {
    const auto *L = cast<LoadStaticInst>(&I);
    return new LoadStaticInst(L->Dst, L->Global);
  }
  case Instruction::Kind::StoreStatic: {
    const auto *S = cast<StoreStaticInst>(&I);
    return new StoreStaticInst(S->Global, S->Src);
  }
  case Instruction::Kind::LoadElem: {
    const auto *L = cast<LoadElemInst>(&I);
    return new LoadElemInst(L->Dst, L->Base, L->Index);
  }
  case Instruction::Kind::StoreElem: {
    const auto *S = cast<StoreElemInst>(&I);
    return new StoreElemInst(S->Base, S->Index, S->Src);
  }
  case Instruction::Kind::ArrayLen: {
    const auto *A = cast<ArrayLenInst>(&I);
    return new ArrayLenInst(A->Dst, A->Base);
  }
  case Instruction::Kind::Call: {
    const auto *C = cast<CallInst>(&I);
    if (C->isVirtual())
      return CallInst::makeVirtual(C->Dst, C->Method, C->Args);
    return CallInst::makeDirect(C->Dst, C->Callee, C->Args);
  }
  case Instruction::Kind::NativeCall: {
    const auto *N = cast<NativeCallInst>(&I);
    return new NativeCallInst(N->Dst, N->Native, N->Args);
  }
  case Instruction::Kind::Br:
    return new BrInst(cast<BrInst>(&I)->Target);
  case Instruction::Kind::CondBr: {
    const auto *C = cast<CondBrInst>(&I);
    return new CondBrInst(C->Cmp, C->Lhs, C->Rhs, C->TrueBlock,
                          C->FalseBlock);
  }
  case Instruction::Kind::Return:
    return new ReturnInst(cast<ReturnInst>(&I)->Src);
  }
  lud_unreachable("unknown instruction kind");
}

std::unique_ptr<Module> lud::cloneModule(
    const Module &M,
    const std::function<bool(const Instruction &)> &Keep) {
  auto Out = std::make_unique<Module>();

  // Classes (same order => same ids). Interned names first so MethodNameId
  // and NativeId values carry over.
  for (const std::string &Name : M.methodNames())
    Out->internMethodName(Name);
  for (const std::string &Name : M.nativeNames())
    Out->internNativeName(Name);
  for (const auto &C : M.classes()) {
    ClassDecl *NC = Out->addClass(C->getName(), C->getSuper());
    for (const FieldDecl &F : C->ownFields())
      NC->addField(F.Name, F.Ty);
    for (const auto &[Method, Func] : C->ownMethods())
      NC->addMethod(Method, Func);
  }
  for (const GlobalDecl &G : M.globals())
    Out->addGlobal(G.Name, G.Ty);

  for (const auto &F : M.functions()) {
    Function *NF = Out->addFunction(F->getName(), F->getNumParams(),
                                    F->getNumRegs(), F->getOwner());
    for (const auto &BB : F->blocks()) {
      BasicBlock *NB = NF->addBlock();
      for (const auto &I : BB->insts()) {
        if (Keep && !I->isTerminator() && !Keep(*I))
          continue;
        NB->append(cloneInstr(*I));
      }
    }
  }
  if (M.getEntry() != kNoFunc)
    Out->setEntry(M.getEntry());
  Out->finalize();
  return Out;
}
