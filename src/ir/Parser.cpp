//===- ir/Parser.cpp - Textual IR parser -----------------------------------===//

#include "ir/Parser.h"

#include "ir/Module.h"
#include "ir/Verifier.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace lud;

namespace {

enum class Tok : uint8_t {
  Ident,
  IntLit,
  FloatLit,
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Colon,
  ColonColon,
  Semi,
  Comma,
  Eq,
  EqEq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  At,
  Dot,
  End,
};

struct Token {
  Tok Kind;
  std::string_view Text;
  unsigned Line;
};

/// Tokenizes the whole input up front; the parser then works on the token
/// vector in two passes (declarations, then bodies).
class Lexer {
public:
  Lexer(std::string_view Text, std::vector<std::string> &Errors)
      : Text(Text), Errors(Errors) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    while (true) {
      Token T = next();
      Out.push_back(T);
      if (T.Kind == Tok::End)
        break;
    }
    return Out;
  }

private:
  Token make(Tok K, size_t Start) {
    return {K, Text.substr(Start, Pos - Start), Line};
  }

  Token next() {
    // Skip whitespace and comments.
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
    if (Pos >= Text.size())
      return {Tok::End, {}, Line};

    size_t Start = Pos;
    char C = Text[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      return make(Tok::Ident, Start);
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Text.size() &&
         std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))) {
      ++Pos;
      bool IsFloat = false;
      while (Pos < Text.size()) {
        char D = Text[Pos];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          ++Pos;
        } else if (D == '.' && Pos + 1 < Text.size() &&
                   std::isdigit(static_cast<unsigned char>(Text[Pos + 1]))) {
          IsFloat = true;
          ++Pos;
        } else if (D == 'e' || D == 'E') {
          IsFloat = true;
          ++Pos;
          if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
            ++Pos;
        } else {
          break;
        }
      }
      return make(IsFloat ? Tok::FloatLit : Tok::IntLit, Start);
    }

    ++Pos;
    switch (C) {
    case '{':
      return make(Tok::LBrace, Start);
    case '}':
      return make(Tok::RBrace, Start);
    case '(':
      return make(Tok::LParen, Start);
    case ')':
      return make(Tok::RParen, Start);
    case '[':
      return make(Tok::LBracket, Start);
    case ']':
      return make(Tok::RBracket, Start);
    case ';':
      return make(Tok::Semi, Start);
    case ',':
      return make(Tok::Comma, Start);
    case '@':
      return make(Tok::At, Start);
    case '.':
      return make(Tok::Dot, Start);
    case ':':
      if (Pos < Text.size() && Text[Pos] == ':') {
        ++Pos;
        return make(Tok::ColonColon, Start);
      }
      return make(Tok::Colon, Start);
    case '=':
      if (Pos < Text.size() && Text[Pos] == '=') {
        ++Pos;
        return make(Tok::EqEq, Start);
      }
      return make(Tok::Eq, Start);
    case '!':
      if (Pos < Text.size() && Text[Pos] == '=') {
        ++Pos;
        return make(Tok::Ne, Start);
      }
      break;
    case '<':
      if (Pos < Text.size() && Text[Pos] == '=') {
        ++Pos;
        return make(Tok::Le, Start);
      }
      return make(Tok::Lt, Start);
    case '>':
      if (Pos < Text.size() && Text[Pos] == '=') {
        ++Pos;
        return make(Tok::Ge, Start);
      }
      return make(Tok::Gt, Start);
    default:
      break;
    }
    Errors.push_back("line " + std::to_string(Line) +
                     ": unexpected character '" + std::string(1, C) + "'");
    return next();
  }

  std::string_view Text;
  std::vector<std::string> &Errors;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Recursive-descent parser over the token vector. Pass 1 registers
/// classes, globals and function signatures so bodies can reference
/// declarations that appear later in the file; pass 2 parses fields and
/// bodies.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<std::string> &Errors)
      : Tokens(std::move(Tokens)), Errors(Errors) {}

  std::unique_ptr<Module> run() {
    M = std::make_unique<Module>();
    declPass();
    if (!Errors.empty())
      return nullptr;
    Idx = 0;
    bodyPass();
    if (!Errors.empty())
      return nullptr;
    M->finalize();
    if (!verifyModule(*M, Errors))
      return nullptr;
    return std::move(M);
  }

private:
  //===--------------------------------------------------------------------===
  // Token plumbing.
  //===--------------------------------------------------------------------===

  const Token &peek() const { return Tokens[Idx]; }
  const Token &get() { return Tokens[Idx == Tokens.size() - 1 ? Idx : Idx++]; }
  bool at(Tok K) const { return peek().Kind == K; }
  bool atIdent(std::string_view S) const {
    return at(Tok::Ident) && peek().Text == S;
  }
  bool accept(Tok K) {
    if (!at(K))
      return false;
    get();
    return true;
  }
  bool acceptIdent(std::string_view S) {
    if (!atIdent(S))
      return false;
    get();
    return true;
  }
  void error(const std::string &Msg) {
    Errors.push_back("line " + std::to_string(peek().Line) + ": " + Msg);
  }
  bool expect(Tok K, const char *What) {
    if (accept(K))
      return true;
    error(std::string("expected ") + What);
    return false;
  }
  /// Skips tokens until (and including) one of the given kinds, for error
  /// recovery at statement granularity.
  void skipPastLineOf(Tok K) {
    while (!at(Tok::End) && !accept(K))
      get();
  }

  //===--------------------------------------------------------------------===
  // Small parsers shared by both passes.
  //===--------------------------------------------------------------------===

  /// Parses a dotted identifier like "A.getVal" or "lud.input".
  bool parseDottedName(std::string &Out) {
    if (!at(Tok::Ident)) {
      error("expected identifier");
      return false;
    }
    Out = std::string(get().Text);
    while (accept(Tok::Dot)) {
      if (!at(Tok::Ident)) {
        error("expected identifier after '.'");
        return false;
      }
      Out += ".";
      Out += get().Text;
    }
    return true;
  }

  /// Parses "rN" into a register index.
  bool parseReg(Reg &Out) {
    if (!at(Tok::Ident) || peek().Text.size() < 2 || peek().Text[0] != 'r') {
      error("expected register (rN)");
      return false;
    }
    std::string_view Digits = peek().Text.substr(1);
    for (char C : Digits) {
      if (!std::isdigit(static_cast<unsigned char>(C))) {
        error("expected register (rN)");
        return false;
      }
    }
    unsigned long V = std::strtoul(std::string(Digits).c_str(), nullptr, 10);
    if (V >= kNoReg) {
      error("register index too large");
      return false;
    }
    get();
    Out = Reg(V);
    return true;
  }

  /// Parses "bbN" into a block index.
  bool parseBlockRef(uint32_t &Out) {
    if (!at(Tok::Ident) || peek().Text.substr(0, 2) != "bb") {
      error("expected block label (bbN)");
      return false;
    }
    std::string Digits(peek().Text.substr(2));
    if (Digits.empty()) {
      error("expected block label (bbN)");
      return false;
    }
    get();
    Out = std::strtoul(Digits.c_str(), nullptr, 10);
    return true;
  }

  bool parseType(Type &Out) {
    if (!at(Tok::Ident)) {
      error("expected type");
      return false;
    }
    std::string Name(get().Text);
    TypeKind Base;
    if (Name == "int") {
      Base = TypeKind::Int;
    } else if (Name == "float") {
      Base = TypeKind::Float;
    } else if (Name == "ref") {
      Base = TypeKind::Ref;
    } else {
      ClassId C = M->findClass(Name);
      if (C == kNoClass) {
        error("unknown type '" + Name + "'");
        return false;
      }
      Out = Type::makeRef(C);
      if (accept(Tok::LBracket)) {
        expect(Tok::RBracket, "']'");
        Out = Type::makeArray(TypeKind::Ref, C);
      }
      return true;
    }
    if (accept(Tok::LBracket)) {
      expect(Tok::RBracket, "']'");
      Out = Type::makeArray(Base);
      return true;
    }
    switch (Base) {
    case TypeKind::Int:
      Out = Type::makeInt();
      break;
    case TypeKind::Float:
      Out = Type::makeFloat();
      break;
    default:
      Out = Type::makeRef();
      break;
    }
    return true;
  }

  //===--------------------------------------------------------------------===
  // Pass 1: declarations.
  //===--------------------------------------------------------------------===

  void declPass() {
    while (!at(Tok::End)) {
      if (acceptIdent("class")) {
        declClass();
      } else if (acceptIdent("global")) {
        declGlobal();
      } else if (atIdent("func") || atIdent("method")) {
        declFunc();
      } else {
        error("expected top-level declaration");
        get();
      }
      if (!Errors.empty())
        return;
    }
  }

  void declClass() {
    if (!at(Tok::Ident)) {
      error("expected class name");
      return;
    }
    std::string Name(get().Text);
    ClassId Super = kNoClass;
    if (acceptIdent("extends")) {
      if (!at(Tok::Ident)) {
        error("expected superclass name");
        return;
      }
      std::string SuperName(get().Text);
      Super = M->findClass(SuperName);
      if (Super == kNoClass) {
        error("superclass '" + SuperName +
              "' not declared (supers must precede subclasses)");
        return;
      }
    }
    if (M->findClass(Name) != kNoClass) {
      error("duplicate class '" + Name + "'");
      return;
    }
    M->addClass(Name, Super);
    if (!expect(Tok::LBrace, "'{'"))
      return;
    // Skip the body; fields are parsed in pass 2.
    unsigned Depth = 1;
    while (Depth && !at(Tok::End)) {
      if (at(Tok::LBrace))
        ++Depth;
      if (at(Tok::RBrace))
        --Depth;
      get();
    }
  }

  void declGlobal() {
    if (!at(Tok::Ident)) {
      error("expected global name");
      return;
    }
    std::string Name(get().Text);
    if (!expect(Tok::Colon, "':'"))
      return;
    // The type may reference classes declared later; record a placeholder
    // and fix it in pass 2 (globals are re-scanned there).
    Type Ty = Type::makeInt();
    if (at(Tok::Ident))
      get();
    if (accept(Tok::LBracket))
      expect(Tok::RBracket, "']'");
    if (M->findGlobal(Name) != kNoGlobal) {
      error("duplicate global '" + Name + "'");
      return;
    }
    M->addGlobal(Name, Ty);
  }

  void declFunc() {
    bool IsMethod = peek().Text == "method";
    get();
    std::string Name;
    if (!parseDottedName(Name))
      return;
    ClassId Owner = kNoClass;
    if (IsMethod) {
      size_t DotPos = Name.rfind('.');
      if (DotPos == std::string::npos) {
        error("method name must be Class.name");
        return;
      }
      Owner = M->findClass(Name.substr(0, DotPos));
      if (Owner == kNoClass) {
        error("method on unknown class in '" + Name + "'");
        return;
      }
    }
    if (!expect(Tok::LParen, "'('"))
      return;
    unsigned NumParams = 0;
    if (!at(Tok::RParen)) {
      do {
        Reg R;
        if (!parseReg(R))
          return;
        if (R != NumParams) {
          error("parameters must be r0, r1, ... in order");
          return;
        }
        ++NumParams;
      } while (accept(Tok::Comma));
    }
    if (!expect(Tok::RParen, "')'"))
      return;
    unsigned NumRegs = NumParams;
    if (acceptIdent("regs")) {
      if (!at(Tok::IntLit)) {
        error("expected register count");
        return;
      }
      NumRegs = std::strtoul(std::string(get().Text).c_str(), nullptr, 10);
    }
    if (M->findFunction(Name) != kNoFunc) {
      error("duplicate function '" + Name + "'");
      return;
    }
    Function *F = M->addFunction(Name, NumParams, NumRegs, Owner);
    if (IsMethod) {
      size_t DotPos = Name.rfind('.');
      M->getClass(Owner)->addMethod(
          M->internMethodName(Name.substr(DotPos + 1)), F->getId());
    }
    if (!expect(Tok::LBrace, "'{'"))
      return;
    unsigned Depth = 1;
    while (Depth && !at(Tok::End)) {
      if (at(Tok::LBrace))
        ++Depth;
      if (at(Tok::RBrace))
        --Depth;
      get();
    }
  }

  //===--------------------------------------------------------------------===
  // Pass 2: class fields, global types, function bodies.
  //===--------------------------------------------------------------------===

  void bodyPass() {
    while (!at(Tok::End) && Errors.empty()) {
      if (acceptIdent("class")) {
        bodyClass();
      } else if (acceptIdent("global")) {
        bodyGlobal();
      } else if (atIdent("func") || atIdent("method")) {
        bodyFunc();
      } else {
        error("expected top-level declaration");
        return;
      }
    }
  }

  void bodyClass() {
    std::string Name(get().Text); // class name (validated in pass 1)
    ClassDecl *C = M->getClass(M->findClass(Name));
    if (acceptIdent("extends"))
      get(); // superclass name
    expect(Tok::LBrace, "'{'");
    while (!at(Tok::RBrace) && !at(Tok::End)) {
      if (!at(Tok::Ident)) {
        error("expected field name");
        return;
      }
      std::string FieldName(get().Text);
      if (!expect(Tok::Colon, "':'"))
        return;
      Type Ty;
      if (!parseType(Ty))
        return;
      expect(Tok::Semi, "';'");
      C->addField(FieldName, Ty);
    }
    expect(Tok::RBrace, "'}'");
  }

  void bodyGlobal() {
    std::string Name(get().Text);
    GlobalId G = M->findGlobal(Name);
    expect(Tok::Colon, "':'");
    Type Ty;
    if (!parseType(Ty))
      return;
    // Patch the placeholder type recorded in pass 1.
    const_cast<GlobalDecl &>(M->globals()[G]).Ty = Ty;
  }

  void bodyFunc() {
    get(); // func / method
    std::string Name;
    parseDottedName(Name);
    F = M->getFunction(M->findFunction(Name));
    // Re-skip the header (validated in pass 1).
    while (!at(Tok::LBrace) && !at(Tok::End))
      get();
    expect(Tok::LBrace, "'{'");
    CurBlock = nullptr;
    while (!at(Tok::RBrace) && !at(Tok::End) && Errors.empty())
      parseStatement();
    expect(Tok::RBrace, "'}'");
    F = nullptr;
  }

  /// Block with index \p Id, created on demand (forward branches).
  BasicBlock *ensureBlock(uint32_t Id) {
    while (F->blocks().size() <= Id)
      F->addBlock();
    return F->getBlock(Id);
  }

  void emit(Instruction *I) {
    if (!CurBlock) {
      error("statement before first block label");
      delete I;
      return;
    }
    CurBlock->append(I);
  }

  bool parseCmpOp(CmpOp &Out) {
    switch (peek().Kind) {
    case Tok::EqEq:
      Out = CmpOp::Eq;
      break;
    case Tok::Ne:
      Out = CmpOp::Ne;
      break;
    case Tok::Lt:
      Out = CmpOp::Lt;
      break;
    case Tok::Le:
      Out = CmpOp::Le;
      break;
    case Tok::Gt:
      Out = CmpOp::Gt;
      break;
    case Tok::Ge:
      Out = CmpOp::Ge;
      break;
    default:
      error("expected comparison operator");
      return false;
    }
    get();
    return true;
  }

  bool parseArgs(std::vector<Reg> &Args) {
    if (!expect(Tok::LParen, "'('"))
      return false;
    if (!at(Tok::RParen)) {
      do {
        Reg R;
        if (!parseReg(R))
          return false;
        Args.push_back(R);
      } while (accept(Tok::Comma));
    }
    return expect(Tok::RParen, "')'");
  }

  /// Parses "call f(..)" / "vcall m(..)" / "ncall n(..)" after the keyword
  /// has been identified; \p Dst is kNoReg for statement position.
  void parseCallTail(const std::string &Kind, Reg Dst) {
    std::string Name;
    if (!parseDottedName(Name))
      return;
    std::vector<Reg> Args;
    if (!parseArgs(Args))
      return;
    if (Kind == "call") {
      FuncId Callee = M->findFunction(Name);
      if (Callee == kNoFunc) {
        error("call to unknown function '" + Name + "'");
        return;
      }
      emit(CallInst::makeDirect(Dst, Callee, std::move(Args)));
    } else if (Kind == "vcall") {
      if (Args.empty()) {
        error("vcall needs a receiver argument");
        return;
      }
      emit(CallInst::makeVirtual(Dst, M->internMethodName(Name),
                                 std::move(Args)));
    } else {
      emit(new NativeCallInst(Dst, M->internNativeName(Name),
                              std::move(Args)));
    }
  }

  /// Field access suffix after "rBase." — either "Class::field" or a
  /// module-unique "field".
  bool parseFieldSuffix(ClassId &ClassOut, FieldSlot &SlotOut) {
    if (!at(Tok::Ident)) {
      error("expected field or class name after '.'");
      return false;
    }
    std::string First(get().Text);
    if (accept(Tok::ColonColon)) {
      ClassId C = M->findClass(First);
      if (C == kNoClass) {
        error("unknown class '" + First + "' in field access");
        return false;
      }
      if (!at(Tok::Ident)) {
        error("expected field name after '::'");
        return false;
      }
      std::string FieldName(get().Text);
      if (!M->resolveField(C, FieldName, SlotOut)) {
        error("class " + First + " has no field '" + FieldName + "'");
        return false;
      }
      ClassOut = C;
      return true;
    }
    if (!M->resolveFieldUnqualified(First, ClassOut, SlotOut)) {
      error("field '" + First +
            "' is unknown or ambiguous; qualify as Class::field");
      return false;
    }
    return true;
  }

  void parseStatement() {
    // Block label?
    if (at(Tok::Ident) && peek().Text.substr(0, 2) == "bb" &&
        Tokens[Idx + 1].Kind == Tok::Colon) {
      uint32_t Id;
      parseBlockRef(Id);
      get(); // ':'
      CurBlock = ensureBlock(Id);
      return;
    }

    if (acceptIdent("goto")) {
      uint32_t T;
      if (!parseBlockRef(T))
        return;
      ensureBlock(T);
      emit(new BrInst(T));
      return;
    }

    if (acceptIdent("if")) {
      Reg L, R;
      CmpOp Cmp;
      uint32_t TB, FB;
      if (!parseReg(L) || !parseCmpOp(Cmp) || !parseReg(R))
        return;
      if (!acceptIdent("goto")) {
        error("expected 'goto'");
        return;
      }
      if (!parseBlockRef(TB))
        return;
      if (!acceptIdent("else")) {
        error("expected 'else'");
        return;
      }
      if (!parseBlockRef(FB))
        return;
      ensureBlock(TB);
      ensureBlock(FB);
      emit(new CondBrInst(Cmp, L, R, TB, FB));
      return;
    }

    if (acceptIdent("ret")) {
      Reg S = kNoReg;
      if (at(Tok::Ident) && peek().Text[0] == 'r' && peek().Text.size() > 1 &&
          std::isdigit(static_cast<unsigned char>(peek().Text[1])))
        parseReg(S);
      emit(new ReturnInst(S));
      return;
    }

    if (atIdent("call") || atIdent("vcall") || atIdent("ncall")) {
      std::string Kind(get().Text);
      parseCallTail(Kind, kNoReg);
      return;
    }

    // "@G = rS": static store.
    if (accept(Tok::At)) {
      if (!at(Tok::Ident)) {
        error("expected global name");
        return;
      }
      std::string Name(get().Text);
      GlobalId G = M->findGlobal(Name);
      if (G == kNoGlobal) {
        error("unknown global '" + Name + "'");
        return;
      }
      Reg S;
      if (!expect(Tok::Eq, "'='") || !parseReg(S))
        return;
      emit(new StoreStaticInst(G, S));
      return;
    }

    // Everything else starts with a register.
    Reg R0;
    if (!parseReg(R0))
      return;

    // "rA[rI] = rS": element store.
    if (accept(Tok::LBracket)) {
      Reg I, S;
      if (!parseReg(I) || !expect(Tok::RBracket, "']'") ||
          !expect(Tok::Eq, "'='") || !parseReg(S))
        return;
      emit(new StoreElemInst(R0, I, S));
      return;
    }

    // "rA.f = rS": field store.
    if (accept(Tok::Dot)) {
      ClassId C;
      FieldSlot Slot;
      if (!parseFieldSuffix(C, Slot))
        return;
      Reg S;
      if (!expect(Tok::Eq, "'='") || !parseReg(S))
        return;
      emit(new StoreFieldInst(R0, C, Slot, S));
      return;
    }

    if (!expect(Tok::Eq, "'='"))
      return;
    parseRhs(R0);
  }

  /// Parses the right-hand side of "rD = ...".
  void parseRhs(Reg Dst) {
    if (accept(Tok::At)) { // rD = @G
      if (!at(Tok::Ident)) {
        error("expected global name");
        return;
      }
      std::string Name(get().Text);
      GlobalId G = M->findGlobal(Name);
      if (G == kNoGlobal) {
        error("unknown global '" + Name + "'");
        return;
      }
      emit(new LoadStaticInst(Dst, G));
      return;
    }

    if (!at(Tok::Ident)) {
      error("expected right-hand side");
      return;
    }
    std::string Head(peek().Text);

    // Register-led RHS: copy, element load, field load.
    if (Head.size() > 1 && Head[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(Head[1]))) {
      Reg Src;
      if (!parseReg(Src))
        return;
      if (accept(Tok::LBracket)) { // rD = rB[rI]
        Reg I;
        if (!parseReg(I) || !expect(Tok::RBracket, "']'"))
          return;
        emit(new LoadElemInst(Dst, Src, I));
        return;
      }
      if (accept(Tok::Dot)) { // rD = rB.f
        ClassId C;
        FieldSlot Slot;
        if (!parseFieldSuffix(C, Slot))
          return;
        emit(new LoadFieldInst(Dst, Src, C, Slot));
        return;
      }
      emit(new AssignInst(Dst, Src));
      return;
    }

    get(); // consume Head

    if (Head == "iconst") {
      bool Neg = false;
      if (!at(Tok::IntLit)) {
        error("expected integer literal");
        return;
      }
      std::string Lit(get().Text);
      int64_t V = std::strtoll(Lit.c_str(), nullptr, 10);
      emit(ConstInst::makeInt(Dst, Neg ? -V : V));
      return;
    }
    if (Head == "fconst") {
      if (!at(Tok::FloatLit) && !at(Tok::IntLit)) {
        error("expected float literal");
        return;
      }
      std::string Lit(get().Text);
      emit(ConstInst::makeFloat(Dst, std::strtod(Lit.c_str(), nullptr)));
      return;
    }
    if (Head == "null") {
      emit(ConstInst::makeNull(Dst));
      return;
    }
    if (Head == "new") {
      if (!at(Tok::Ident)) {
        error("expected class name");
        return;
      }
      std::string Name(get().Text);
      ClassId C = M->findClass(Name);
      if (C == kNoClass) {
        error("new of unknown class '" + Name + "'");
        return;
      }
      emit(new AllocInst(Dst, C));
      return;
    }
    if (Head == "newarray") {
      if (!at(Tok::Ident)) {
        error("expected element kind");
        return;
      }
      std::string KindName(get().Text);
      TypeKind Elem;
      if (KindName == "int")
        Elem = TypeKind::Int;
      else if (KindName == "float")
        Elem = TypeKind::Float;
      else if (KindName == "ref" || M->findClass(KindName) != kNoClass)
        Elem = TypeKind::Ref;
      else {
        error("unknown array element kind '" + KindName + "'");
        return;
      }
      Reg Len;
      if (!expect(Tok::Comma, "','") || !parseReg(Len))
        return;
      emit(new AllocArrayInst(Dst, Elem, Len));
      return;
    }
    if (Head == "len") {
      Reg B;
      if (!parseReg(B))
        return;
      emit(new ArrayLenInst(Dst, B));
      return;
    }
    if (Head == "call" || Head == "vcall" || Head == "ncall") {
      parseCallTail(Head, Dst);
      return;
    }

    // Unary ops.
    static const std::unordered_map<std::string, UnOp> UnOps = {
        {"neg", UnOp::Neg},     {"not", UnOp::Not},   {"i2f", UnOp::I2F},
        {"f2i", UnOp::F2I},     {"fbits", UnOp::FBits},
        {"bitsf", UnOp::BitsF},
    };
    auto UIt = UnOps.find(Head);
    if (UIt != UnOps.end()) {
      Reg S;
      if (!parseReg(S))
        return;
      emit(new UnInst(UIt->second, Dst, S));
      return;
    }

    // Binary ops.
    static const std::unordered_map<std::string, BinOp> BinOps = {
        {"add", BinOp::Add},     {"sub", BinOp::Sub},
        {"mul", BinOp::Mul},     {"div", BinOp::Div},
        {"rem", BinOp::Rem},     {"shl", BinOp::Shl},
        {"shr", BinOp::Shr},     {"and", BinOp::And},
        {"or", BinOp::Or},       {"xor", BinOp::Xor},
        {"cmpeq", BinOp::CmpEq}, {"cmpne", BinOp::CmpNe},
        {"cmplt", BinOp::CmpLt}, {"cmple", BinOp::CmpLe},
        {"cmpgt", BinOp::CmpGt}, {"cmpge", BinOp::CmpGe},
    };
    auto BIt = BinOps.find(Head);
    if (BIt != BinOps.end()) {
      Reg L, R;
      if (!parseReg(L) || !expect(Tok::Comma, "','") || !parseReg(R))
        return;
      emit(new BinInst(BIt->second, Dst, L, R));
      return;
    }

    error("unknown statement head '" + Head + "'");
  }

  std::vector<Token> Tokens;
  std::vector<std::string> &Errors;
  size_t Idx = 0;
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  BasicBlock *CurBlock = nullptr;
};

} // namespace

std::unique_ptr<Module> lud::parseModule(std::string_view Text,
                                         std::vector<std::string> &Errors) {
  Lexer Lex(Text, Errors);
  std::vector<Token> Tokens = Lex.run();
  if (!Errors.empty())
    return nullptr;
  return Parser(std::move(Tokens), Errors).run();
}
