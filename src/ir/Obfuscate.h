//===- ir/Obfuscate.h - Adversarial obfuscation pass layer -----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic obfuscation transforms over finalized modules —
/// the adversarial counterpart of the cooperative DaCapo analogues. Each
/// transform plants exactly the low-utility shapes Section 3.2 of the paper
/// diagnoses, and each injected site is benefit-zero *by construction*, so
/// the workloads are self-validating: the cost-benefit report must rank the
/// manifest-tagged sites above every genuine structure, and the profile-
/// guided optimizer must strip them while preserving status / sink hash /
/// return value on both engines.
///
/// Three transforms, independently selectable:
///  - junk-code injection: dead structures written on executed paths but
///    never read (pure n-RAC, the "dead ratio" rows of the report);
///  - opaque predicates: always-true / always-false guards over a global
///    the program never varies (the constant-predicate client must prove
///    the invariance the obfuscator hid);
///  - string tables: encode-at-build / decode-at-runtime element rewrites
///    (the rewrite-per-read pattern of the paper's case studies).
///
/// Obfuscation is a clone-with-injection rebuild: blocks keep their ids
/// (injected diversion blocks are appended after all originals), registers
/// grow past the source frame, and no observable behavior changes — the
/// transforms introduce no native calls, no traps, and no new back edges.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_OBFUSCATE_H
#define LUD_IR_OBFUSCATE_H

#include "ir/Ids.h"

#include <memory>
#include <string>
#include <vector>

namespace lud {

class Module;

/// Which transform produced an injected site (manifest entries).
enum class ObfKind : uint8_t {
  Junk,
  Opaque,
  StringTable,
};

/// Printable transform name ("junk", "opaque", "strings").
const char *obfKindName(ObfKind K);

struct ObfuscateOptions {
  /// Seed of the deterministic transform stream. Identical seed + options
  /// + input module => byte-identical output and manifest.
  uint64_t Seed = 1;

  /// Transform selection (all off by default; parseObfuscatePasses fills
  /// these from a "junk,opaque,strings" / "all" spelling).
  bool Junk = false;
  bool Opaque = false;
  bool Strings = false;

  /// Function-name scope filters. When Include is non-empty only listed
  /// functions are transformed; Exclude always wins. Control-flow outside
  /// the scope is never touched.
  std::vector<std::string> Include;
  std::vector<std::string> Exclude;

  /// Per-block injection probabilities in percent.
  unsigned JunkChance = 50;
  unsigned OpaqueChance = 35;
  /// Per-function probability that a string table is planted.
  unsigned StringChance = 60;
};

/// One injected site, recorded for exact report-ranking assertions.
struct ObfSiteTag {
  ObfKind Kind = ObfKind::Junk;
  /// Function the site was injected into.
  std::string Function;
  /// For Junk / StringTable: Module::describeAllocSite of the injected
  /// allocation, verbatim, so tests and CI can match report rows by
  /// string. For Opaque: "opaque predicate @ <function> #<instr>".
  std::string Description;
  /// Allocation site id in the obfuscated module (Junk / StringTable).
  AllocSiteId Site = kNoAllocSite;
  /// Instruction id in the obfuscated module (the alloc, or the CondBr of
  /// an opaque predicate).
  InstrId Instr = kNoInstr;
};

struct ObfuscationResult {
  std::unique_ptr<Module> M;
  std::vector<ObfSiteTag> Manifest;
  /// Instructions the transforms added (diversion-block payloads included).
  size_t InjectedInstrs = 0;
};

/// Parses a pass list ("junk", "opaque", "strings", comma-separated, or
/// "all") into \p Opts. Returns false and sets \p Err on an unknown name
/// or an empty list.
bool parseObfuscatePasses(const std::string &Spec, ObfuscateOptions &Opts,
                          std::string &Err);

/// Applies the selected transforms to finalized module \p M and returns
/// the finalized, verifier-clean obfuscated module plus its manifest.
/// Deterministic in (module, options).
ObfuscationResult obfuscateModule(const Module &M,
                                  const ObfuscateOptions &Opts);

} // namespace lud

#endif // LUD_IR_OBFUSCATE_H
