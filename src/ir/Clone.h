//===- ir/Clone.h - Module cloning with instruction filters ----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copies a module, optionally dropping instructions (the rewrite
/// primitive behind the profile-guided optimizer). Classes, globals,
/// functions, blocks and registers keep their ids and numbering, so call
/// targets and branch labels survive unchanged; only the dense instruction
/// and allocation-site ids are re-assigned by the clone's finalize().
/// Terminators are never dropped (the filter is not consulted for them),
/// keeping every block well-formed.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_CLONE_H
#define LUD_IR_CLONE_H

#include <functional>
#include <memory>

namespace lud {

class Instruction;
class Module;

/// Clones a single instruction (without parent/id).
Instruction *cloneInstr(const Instruction &I);

/// Deep-copies \p M, keeping a non-terminator instruction only when
/// \p Keep returns true (pass nullptr to keep everything). The result is
/// finalized and ready to run.
std::unique_ptr<Module>
cloneModule(const Module &M,
            const std::function<bool(const Instruction &)> &Keep = nullptr);

} // namespace lud

#endif // LUD_IR_CLONE_H
