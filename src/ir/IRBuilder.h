//===- ir/IRBuilder.h - Convenience IR construction ------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stateful builder that appends instructions to a current block, with
/// automatic register allocation. Used by workload generators, tests and
/// examples; the textual parser builds IR through Module directly.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_IRBUILDER_H
#define LUD_IR_IRBUILDER_H

#include "ir/Module.h"
#include "support/ErrorHandling.h"

namespace lud {

class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &module() { return M; }

  //===--------------------------------------------------------------------===
  // Function scaffolding.
  //===--------------------------------------------------------------------===

  /// Starts a new function with an entry block; parameters occupy registers
  /// [0, NumParams). Call endFunction() when all blocks are emitted.
  Function *beginFunction(const std::string &Name, unsigned NumParams,
                          ClassId Owner = kNoClass) {
    assert(!F && "previous function not ended");
    F = M.addFunction(Name, NumParams, NumParams, Owner);
    NextReg = NumParams;
    BB = F->addBlock();
    return F;
  }

  /// Starts an instance method and registers it in the owner's vtable under
  /// \p Name's unqualified method name. `this` is parameter 0.
  Function *beginMethod(ClassId Owner, const std::string &MethodName,
                        unsigned NumParams) {
    const std::string FullName = M.getClass(Owner)->getName() + "." +
                                 MethodName;
    Function *Fn = beginFunction(FullName, NumParams, Owner);
    M.getClass(Owner)->addMethod(M.internMethodName(MethodName), Fn->getId());
    return Fn;
  }

  /// Finalizes the current function's register count.
  void endFunction() {
    assert(F && "no function in progress");
    F->setNumRegs(NextReg);
    F = nullptr;
    BB = nullptr;
  }

  /// Creates a new block in the current function (does not switch to it).
  BasicBlock *newBlock() {
    assert(F && "no function in progress");
    return F->addBlock();
  }

  /// Redirects subsequent emission into \p B.
  void setBlock(BasicBlock *B) { BB = B; }
  BasicBlock *block() const { return BB; }
  Function *function() const { return F; }

  /// Allocates a fresh virtual register.
  Reg newReg() {
    if (NextReg == kNoReg)
      lud_unreachable("virtual register space exhausted");
    return NextReg++;
  }

  //===--------------------------------------------------------------------===
  // Instruction emission. Value-producing emitters return the dst register.
  //===--------------------------------------------------------------------===

  Reg iconst(int64_t V) { return dstOf(ConstInst::makeInt(newReg(), V)); }
  Reg fconst(double V) { return dstOf(ConstInst::makeFloat(newReg(), V)); }
  Reg nullconst() { return dstOf(ConstInst::makeNull(newReg())); }
  /// Emits an integer constant directly into \p Dst.
  void iconstInto(Reg Dst, int64_t V) { append(ConstInst::makeInt(Dst, V)); }

  Reg move(Reg Src) { return dstOf(new AssignInst(newReg(), Src)); }
  void moveInto(Reg Dst, Reg Src) { append(new AssignInst(Dst, Src)); }

  Reg bin(BinOp Op, Reg L, Reg R) {
    return dstOf(new BinInst(Op, newReg(), L, R));
  }
  void binInto(Reg Dst, BinOp Op, Reg L, Reg R) {
    append(new BinInst(Op, Dst, L, R));
  }
  Reg add(Reg L, Reg R) { return bin(BinOp::Add, L, R); }
  Reg sub(Reg L, Reg R) { return bin(BinOp::Sub, L, R); }
  Reg mul(Reg L, Reg R) { return bin(BinOp::Mul, L, R); }

  Reg un(UnOp Op, Reg S) { return dstOf(new UnInst(Op, newReg(), S)); }

  Reg alloc(ClassId C) { return dstOf(new AllocInst(newReg(), C)); }
  Reg allocArray(TypeKind Elem, Reg Len) {
    return dstOf(new AllocArrayInst(newReg(), Elem, Len));
  }

  Reg loadField(Reg Base, ClassId C, const std::string &Field) {
    FieldSlot Slot;
    if (!M.resolveField(C, Field, Slot))
      lud_unreachable("loadField: unknown field");
    return dstOf(new LoadFieldInst(newReg(), Base, C, Slot));
  }
  void storeField(Reg Base, ClassId C, const std::string &Field, Reg Src) {
    FieldSlot Slot;
    if (!M.resolveField(C, Field, Slot))
      lud_unreachable("storeField: unknown field");
    append(new StoreFieldInst(Base, C, Slot, Src));
  }

  Reg loadStatic(GlobalId G) { return dstOf(new LoadStaticInst(newReg(), G)); }
  void storeStatic(GlobalId G, Reg Src) {
    append(new StoreStaticInst(G, Src));
  }

  Reg loadElem(Reg Base, Reg Index) {
    return dstOf(new LoadElemInst(newReg(), Base, Index));
  }
  void storeElem(Reg Base, Reg Index, Reg Src) {
    append(new StoreElemInst(Base, Index, Src));
  }
  Reg arrayLen(Reg Base) { return dstOf(new ArrayLenInst(newReg(), Base)); }

  /// Direct call to the function named \p Callee (must already exist).
  Reg call(const std::string &Callee, std::vector<Reg> Args) {
    FuncId Id = M.findFunction(Callee);
    if (Id == kNoFunc)
      lud_unreachable("call: unknown function");
    return dstOf(CallInst::makeDirect(newReg(), Id, std::move(Args)));
  }
  Reg call(FuncId Callee, std::vector<Reg> Args) {
    return dstOf(CallInst::makeDirect(newReg(), Callee, std::move(Args)));
  }
  /// Direct call whose result is discarded.
  void callVoid(const std::string &Callee, std::vector<Reg> Args) {
    FuncId Id = M.findFunction(Callee);
    if (Id == kNoFunc)
      lud_unreachable("callVoid: unknown function");
    append(CallInst::makeDirect(kNoReg, Id, std::move(Args)));
  }
  /// Virtual call; Args[0] is the receiver.
  Reg vcall(const std::string &Method, std::vector<Reg> Args) {
    return dstOf(CallInst::makeVirtual(newReg(), M.internMethodName(Method),
                                       std::move(Args)));
  }
  void vcallVoid(const std::string &Method, std::vector<Reg> Args) {
    append(CallInst::makeVirtual(kNoReg, M.internMethodName(Method),
                                 std::move(Args)));
  }

  Reg ncall(const std::string &Native, std::vector<Reg> Args) {
    return dstOf(new NativeCallInst(newReg(), M.internNativeName(Native),
                                    std::move(Args)));
  }
  void ncallVoid(const std::string &Native, std::vector<Reg> Args) {
    append(new NativeCallInst(kNoReg, M.internNativeName(Native),
                              std::move(Args)));
  }

  void br(BasicBlock *Target) { append(new BrInst(Target->getId())); }
  void condBr(CmpOp Cmp, Reg L, Reg R, BasicBlock *TrueB, BasicBlock *FalseB) {
    append(new CondBrInst(Cmp, L, R, TrueB->getId(), FalseB->getId()));
  }
  void ret(Reg Src = kNoReg) { append(new ReturnInst(Src)); }

  /// Appends an already-constructed instruction (takes ownership).
  Instruction *append(Instruction *I) {
    assert(BB && "no insertion block");
    return BB->append(I);
  }

private:
  template <typename InstT> Reg dstOf(InstT *I) {
    append(I);
    return I->Dst;
  }

  Module &M;
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
  Reg NextReg = 0;
};

} // namespace lud

#endif // LUD_IR_IRBUILDER_H
