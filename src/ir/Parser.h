//===- ir/Parser.h - Textual IR parser -------------------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual .lud format produced by ir/Printer.h. Grammar sketch:
///
/// \code
///   class Name [extends Super] { field: type; ... }
///   global Name: type
///   func Name(r0, r1) regs N { bb0: ... }
///   method Class.Name(r0, ...) regs N { ... }   // r0 is `this`
/// \endcode
///
/// Statements are the one-line forms of instToString. Superclasses must be
/// declared before subclasses. '#' starts a comment to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_PARSER_H
#define LUD_IR_PARSER_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lud {

class Module;

/// Parses \p Text into a finalized module. On failure returns null and
/// appends one message per diagnostic to \p Errors.
std::unique_ptr<Module> parseModule(std::string_view Text,
                                    std::vector<std::string> &Errors);

} // namespace lud

#endif // LUD_IR_PARSER_H
