//===- ir/Instruction.h - Three-address-code instructions ------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the three-address-code representation the paper's
/// analyses operate on (Section 2: "each statement corresponds to a bytecode
/// instruction"). Every instruction has unit cost. The hierarchy uses
/// LLVM-style isa/cast/dyn_cast via a kind discriminator.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_INSTRUCTION_H
#define LUD_IR_INSTRUCTION_H

#include "ir/Ids.h"
#include "ir/Type.h"
#include "support/Casting.h"

#include <cassert>
#include <vector>

namespace lud {

class BasicBlock;

/// Binary arithmetic / comparison opcodes. Comparisons yield int 0/1.
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
};

/// Unary opcodes. FBits/BitsF mirror Float.floatToIntBits /
/// Float.intBitsToFloat from the paper's sunflow case study.
enum class UnOp : uint8_t {
  Neg,
  Not,
  I2F,
  F2I,
  FBits,
  BitsF,
};

/// Comparison used by conditional branches (the paper's predicate
/// instructions, rule PREDICATE of Figure 4).
enum class CmpOp : uint8_t {
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
};

/// Returns a printable mnemonic ("add", "cmpeq", ...).
const char *binOpName(BinOp Op);
/// Returns a printable mnemonic ("neg", "fbits", ...).
const char *unOpName(UnOp Op);
/// Returns the comparison operator spelling ("==", "<", ...).
const char *cmpOpName(CmpOp Op);

/// Base class of all instructions. Instructions are owned by their basic
/// block; Module::finalize() assigns the dense global Id used to key
/// profiler-side tables.
class Instruction {
public:
  enum class Kind : uint8_t {
    Const,
    Assign,
    Bin,
    Un,
    Alloc,
    AllocArray,
    LoadField,
    StoreField,
    LoadStatic,
    StoreStatic,
    LoadElem,
    StoreElem,
    ArrayLen,
    Call,
    NativeCall,
    Br,
    CondBr,
    Return,
  };

  virtual ~Instruction();

  Kind getKind() const { return TheKind; }
  InstrId getId() const { return Id; }
  BasicBlock *getParent() const { return Parent; }

  /// True for instructions that read a heap or static location. Thin-slice
  /// single-hop traversals (Definitions 5/6) refuse to cross these.
  bool readsHeap() const {
    return TheKind == Kind::LoadField || TheKind == Kind::LoadStatic ||
           TheKind == Kind::LoadElem || TheKind == Kind::ArrayLen;
  }
  /// True for instructions that write a heap or static location (the
  /// "boxed" nodes of Figure 3).
  bool writesHeap() const {
    return TheKind == Kind::StoreField || TheKind == Kind::StoreStatic ||
           TheKind == Kind::StoreElem;
  }
  /// True for object / array allocations (the "underlined" nodes).
  bool isAlloc() const {
    return TheKind == Kind::Alloc || TheKind == Kind::AllocArray;
  }
  /// True for the block terminators (Br, CondBr, Return).
  bool isTerminator() const {
    return TheKind == Kind::Br || TheKind == Kind::CondBr ||
           TheKind == Kind::Return;
  }

  static bool classof(const Instruction *) { return true; }

private:
  friend class BasicBlock;
  friend class Module;

  Kind TheKind;
  InstrId Id = kNoInstr;
  BasicBlock *Parent = nullptr;

protected:
  explicit Instruction(Kind K) : TheKind(K) {}
};

/// Dst = <literal>. Literals are ints, floats, or null.
class ConstInst : public Instruction {
public:
  enum class LitKind : uint8_t { Int, Float, Null };

  static ConstInst *makeInt(Reg Dst, int64_t V) {
    auto *I = new ConstInst(Dst, LitKind::Int);
    I->IntVal = V;
    return I;
  }
  static ConstInst *makeFloat(Reg Dst, double V) {
    auto *I = new ConstInst(Dst, LitKind::Float);
    I->FloatVal = V;
    return I;
  }
  static ConstInst *makeNull(Reg Dst) {
    return new ConstInst(Dst, LitKind::Null);
  }

  Reg Dst;
  LitKind Lit;
  int64_t IntVal = 0;
  double FloatVal = 0;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::Const;
  }

private:
  ConstInst(Reg Dst, LitKind Lit)
      : Instruction(Kind::Const), Dst(Dst), Lit(Lit) {}
};

/// Dst = Src (register copy; rule ASSIGN).
class AssignInst : public Instruction {
public:
  AssignInst(Reg Dst, Reg Src) : Instruction(Kind::Assign), Dst(Dst),
                                 Src(Src) {}

  Reg Dst;
  Reg Src;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::Assign;
  }
};

/// Dst = Lhs op Rhs (rule COMPUTATION).
class BinInst : public Instruction {
public:
  BinInst(BinOp Op, Reg Dst, Reg Lhs, Reg Rhs)
      : Instruction(Kind::Bin), Op(Op), Dst(Dst), Lhs(Lhs), Rhs(Rhs) {}

  BinOp Op;
  Reg Dst;
  Reg Lhs;
  Reg Rhs;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::Bin;
  }
};

/// Dst = op Src.
class UnInst : public Instruction {
public:
  UnInst(UnOp Op, Reg Dst, Reg Src)
      : Instruction(Kind::Un), Op(Op), Dst(Dst), Src(Src) {}

  UnOp Op;
  Reg Dst;
  Reg Src;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::Un;
  }
};

/// Dst = new Class (rule ALLOC). Module::finalize() assigns the allocation
/// site id used for object tags and context chains.
class AllocInst : public Instruction {
public:
  AllocInst(Reg Dst, ClassId Class)
      : Instruction(Kind::Alloc), Dst(Dst), Class(Class) {}

  Reg Dst;
  ClassId Class;
  AllocSiteId Site = kNoAllocSite;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::Alloc;
  }
};

/// Dst = new Elem[Len].
class AllocArrayInst : public Instruction {
public:
  AllocArrayInst(Reg Dst, TypeKind Elem, Reg Len)
      : Instruction(Kind::AllocArray), Dst(Dst), Elem(Elem), Len(Len) {}

  Reg Dst;
  TypeKind Elem;
  Reg Len;
  AllocSiteId Site = kNoAllocSite;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::AllocArray;
  }
};

/// Dst = Base.field (rule LOAD FIELD). Thin slicing: the base pointer value
/// is *not* a use; the dependence comes from the shadow of the heap slot.
class LoadFieldInst : public Instruction {
public:
  LoadFieldInst(Reg Dst, Reg Base, ClassId Class, FieldSlot Slot)
      : Instruction(Kind::LoadField), Dst(Dst), Base(Base), Class(Class),
        Slot(Slot) {}

  Reg Dst;
  Reg Base;
  /// Class whose layout Slot was resolved against (for printing).
  ClassId Class;
  FieldSlot Slot;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::LoadField;
  }
};

/// Base.field = Src (rule STORE FIELD).
class StoreFieldInst : public Instruction {
public:
  StoreFieldInst(Reg Base, ClassId Class, FieldSlot Slot, Reg Src)
      : Instruction(Kind::StoreField), Base(Base), Class(Class), Slot(Slot),
        Src(Src) {}

  Reg Base;
  ClassId Class;
  FieldSlot Slot;
  Reg Src;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::StoreField;
  }
};

/// Dst = @global (rule LOAD STATIC).
class LoadStaticInst : public Instruction {
public:
  LoadStaticInst(Reg Dst, GlobalId Global)
      : Instruction(Kind::LoadStatic), Dst(Dst), Global(Global) {}

  Reg Dst;
  GlobalId Global;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::LoadStatic;
  }
};

/// @global = Src (rule STORE STATIC).
class StoreStaticInst : public Instruction {
public:
  StoreStaticInst(GlobalId Global, Reg Src)
      : Instruction(Kind::StoreStatic), Global(Global), Src(Src) {}

  GlobalId Global;
  Reg Src;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::StoreStatic;
  }
};

/// Dst = Base[Index]. The index value *is* a use even under thin slicing
/// (Section 2.1: "for an array element access, the index used to locate the
/// element is still considered to be used").
class LoadElemInst : public Instruction {
public:
  LoadElemInst(Reg Dst, Reg Base, Reg Index)
      : Instruction(Kind::LoadElem), Dst(Dst), Base(Base), Index(Index) {}

  Reg Dst;
  Reg Base;
  Reg Index;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::LoadElem;
  }
};

/// Base[Index] = Src.
class StoreElemInst : public Instruction {
public:
  StoreElemInst(Reg Base, Reg Index, Reg Src)
      : Instruction(Kind::StoreElem), Base(Base), Index(Index), Src(Src) {}

  Reg Base;
  Reg Index;
  Reg Src;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::StoreElem;
  }
};

/// Dst = len(Base). Treated as a heap read of the array's length slot.
class ArrayLenInst : public Instruction {
public:
  ArrayLenInst(Reg Dst, Reg Base)
      : Instruction(Kind::ArrayLen), Dst(Dst), Base(Base) {}

  Reg Dst;
  Reg Base;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::ArrayLen;
  }
};

/// Dst = call f(args) / Dst = vcall m(recv, args). Virtual calls dispatch on
/// the dynamic class of the receiver (Args[0]) through the vtable; they are
/// what extend the object-sensitive context chain (rule METHOD ENTRY).
class CallInst : public Instruction {
public:
  /// Direct (statically bound) call.
  static CallInst *makeDirect(Reg Dst, FuncId Callee, std::vector<Reg> Args) {
    auto *I = new CallInst(Dst, std::move(Args));
    I->Callee = Callee;
    return I;
  }
  /// Virtual call; Args[0] is the receiver.
  static CallInst *makeVirtual(Reg Dst, MethodNameId Method,
                               std::vector<Reg> Args) {
    assert(!Args.empty() && "virtual call needs a receiver");
    auto *I = new CallInst(Dst, std::move(Args));
    I->Method = Method;
    return I;
  }

  bool isVirtual() const { return Method != kNoMethodName; }

  Reg Dst; // kNoReg when the result is discarded.
  std::vector<Reg> Args;
  FuncId Callee = kNoFunc;
  MethodNameId Method = kNoMethodName;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::Call;
  }

private:
  CallInst(Reg Dst, std::vector<Reg> Args)
      : Instruction(Kind::Call), Dst(Dst), Args(std::move(Args)) {}
};

/// Dst = ncall native(args). Native calls are the paper's "native nodes":
/// context-free consumers representing data leaving the managed world.
class NativeCallInst : public Instruction {
public:
  NativeCallInst(Reg Dst, NativeId Native, std::vector<Reg> Args)
      : Instruction(Kind::NativeCall), Dst(Dst), Native(Native),
        Args(std::move(Args)) {}

  Reg Dst; // kNoReg for void natives.
  NativeId Native;
  std::vector<Reg> Args;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::NativeCall;
  }
};

/// Unconditional branch to a block of the same function.
class BrInst : public Instruction {
public:
  explicit BrInst(uint32_t Target) : Instruction(Kind::Br), Target(Target) {}

  uint32_t Target;

  static bool classof(const Instruction *I) { return I->getKind() == Kind::Br; }
};

/// if Lhs cmp Rhs goto TrueBlock else FalseBlock. This is the paper's
/// predicate instruction: a context-free consumer node (rule PREDICATE).
class CondBrInst : public Instruction {
public:
  CondBrInst(CmpOp Cmp, Reg Lhs, Reg Rhs, uint32_t TrueBlock,
             uint32_t FalseBlock)
      : Instruction(Kind::CondBr), Cmp(Cmp), Lhs(Lhs), Rhs(Rhs),
        TrueBlock(TrueBlock), FalseBlock(FalseBlock) {}

  CmpOp Cmp;
  Reg Lhs;
  Reg Rhs;
  uint32_t TrueBlock;
  uint32_t FalseBlock;

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::CondBr;
  }
};

/// ret / ret Src. Produces a graph node so unused return values become
/// ultimately-dead sinks (Table 1(c)) and method-level costs can anchor on
/// return values (Section 3.2).
class ReturnInst : public Instruction {
public:
  explicit ReturnInst(Reg Src = kNoReg) : Instruction(Kind::Return),
                                          Src(Src) {}

  Reg Src; // kNoReg for void returns.

  static bool classof(const Instruction *I) {
    return I->getKind() == Kind::Return;
  }
};

} // namespace lud

#endif // LUD_IR_INSTRUCTION_H
