//===- ir/ObfuscatePasses.cpp - The three obfuscation emitters -------------===//
//
// Each emitter plants one of the adversarial shapes of Section 3.2, built
// so the closed loop holds by construction:
//
//  - junk payloads write int chains into one module-wide accumulator
//    object nothing ever reads: the whole program's junk cost lands on a
//    single allocation site whose pure n-RAC / zero n-RAB "dead" ratio is
//    guaranteed to outrank every genuine structure, and the profiled-dead-
//    store sweep plus pure-producer DCE (analysis/Optimizer.cpp) strips
//    every payload, leaving only the two-instruction accumulator spine
//    (its ref store is structure spine, which the sweep rightly keeps);
//  - opaque guards compare a never-varying global against its only stored
//    value: control flow is unchanged at run time, the diversion arm never
//    executes, and the constant-predicate client must prove the invariance;
//  - string tables fill an int array with XOR-encoded function-name bytes
//    and re-decode elements in place at use sites (rewrite-per-read); the
//    whole closed subgraph reaches no consumer, so dead-value analysis
//    classifies every node D* and the sweep removes table, fill, and
//    decode together.
//
// Trap freedom: no Div/Rem, constant indices below constant lengths, all
// bases are fresh local allocations, and no transform adds a back edge.
// Chain constants stay below 2^16 so Add/Sub chains cannot overflow.
//
//===----------------------------------------------------------------------===//

#include "ir/ObfuscateImpl.h"

using namespace lud;
using namespace lud::detail;

namespace {
/// Register-frame headroom guard: Reg is 16 bits; stop injecting into a
/// function whose frame approaches the sentinel instead of wrapping.
constexpr unsigned kRegHeadroom = 0xFF00;
} // namespace

Reg Obfuscator::emitJunkChain(BasicBlock &B, RNG &R, unsigned &NextReg) {
  Reg P = Reg(NextReg++);
  B.append(ConstInst::makeInt(P, int64_t(R.nextBelow(1u << 16))));
  ++Injected;
  // Overflow-free opcode mix only (no Mul: chained products of 16-bit
  // values would leave int64 range).
  static const BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::And,
                              BinOp::Or};
  unsigned Len = 2 + unsigned(R.nextBelow(3));
  for (unsigned I = 0; I != Len; ++I) {
    Reg C = Reg(NextReg++);
    Reg Q = Reg(NextReg++);
    B.append(ConstInst::makeInt(C, int64_t(R.nextBelow(1u << 16))));
    B.append(new BinInst(Ops[R.nextBelow(5)], Q, P, C));
    Injected += 2;
    P = Q;
  }
  return P;
}

void Obfuscator::emitJunkAccumulator(BasicBlock &B, unsigned &NextReg,
                                     FuncId F) {
  Reg D = Reg(NextReg++);
  Instruction *A = B.append(new AllocInst(D, JunkClass));
  Pending.push_back({ObfKind::Junk, A, F});
  B.append(new StoreStaticInst(JunkSink, D));
  Injected += 2;
}

void Obfuscator::emitJunk(BasicBlock &B, RNG &R, unsigned &NextReg,
                          FuncId F) {
  (void)F;
  if (NextReg + 16 >= kRegHeadroom)
    return;
  // Every injection writes its own fresh field of the module's single
  // accumulator object (see emitJunkAccumulator): the whole program's
  // junk cost lands on ONE allocation site, summed field by field, so the
  // site's n-RAC is a large share of total execution cost and outranks
  // every genuine structure. Per-block fresh allocations would instead
  // let a cold-path junk site rank below a hot genuine dead structure,
  // and a shared field would average the hot writers away against the
  // cold ones.
  Reg S = Reg(NextReg++);
  B.append(new LoadStaticInst(S, JunkSink));
  ++Injected;
  Reg P = emitJunkChain(B, R, NextReg);
  // ObfJunk has no superclass, so layout slot == own-field index.
  FieldSlot Slot = FieldSlot(NumJunkFields++);
  Out->getClass(JunkClass)->addField("j" + std::to_string(Slot),
                                     Type::makeInt());
  B.append(new StoreFieldInst(S, JunkClass, Slot, P));
  ++Injected;
}

void Obfuscator::emitDiversionPayload(BasicBlock &B, unsigned &NextReg) {
  Reg A = Reg(NextReg++);
  Reg C = Reg(NextReg++);
  Reg D = Reg(NextReg++);
  B.append(ConstInst::makeInt(A, 0x5eed));
  B.append(ConstInst::makeInt(C, 0x0bf));
  B.append(new BinInst(BinOp::Xor, D, A, C));
  Injected += 3;
}

Instruction *Obfuscator::emitOpaqueGuard(BasicBlock &B, Function &NF, RNG &R,
                                         unsigned &NextReg, uint32_t Target) {
  Reg V = Reg(NextReg++);
  Reg C = Reg(NextReg++);
  B.append(new LoadStaticInst(V, OpaqueGlobal));
  B.append(ConstInst::makeInt(C, OpaqueKey));
  Injected += 2;
  BasicBlock *J = NF.addBlock();
  Instruction *CB;
  if (R.nextBelow(2) == 0) {
    // Always true: fall through to the real target on the taken arm.
    CB = new CondBrInst(CmpOp::Eq, V, C, Target, J->getId());
  } else {
    // Always false: the real target sits on the not-taken arm.
    CB = new CondBrInst(CmpOp::Ne, V, C, J->getId(), Target);
  }
  B.append(CB);
  ++Injected;
  emitDiversionPayload(*J, NextReg);
  J->append(new BrInst(Target));
  ++Injected;
  return CB;
}

void Obfuscator::emitStringTableBuild(BasicBlock &B, unsigned &NextReg,
                                      Reg TabReg, const std::string &FuncName,
                                      FuncId F) {
  constexpr unsigned kTableLen = 8;
  Reg L = Reg(NextReg++);
  B.append(ConstInst::makeInt(L, kTableLen));
  Instruction *A = B.append(new AllocArrayInst(TabReg, TypeKind::Int, L));
  Pending.push_back({ObfKind::StringTable, A, F});
  Injected += 2;
  for (unsigned I = 0; I != kTableLen; ++I) {
    int64_t Byte =
        I < FuncName.size() ? int64_t(uint8_t(FuncName[I])) : int64_t(I);
    Reg Idx = Reg(NextReg++);
    Reg V = Reg(NextReg++);
    B.append(ConstInst::makeInt(Idx, I));
    B.append(ConstInst::makeInt(V, Byte ^ StringKey));
    B.append(new StoreElemInst(TabReg, Idx, V));
    Injected += 3;
  }
}

void Obfuscator::emitStringDecode(BasicBlock &B, RNG &R, unsigned &NextReg,
                                  Reg TabReg) {
  if (NextReg + 8 >= kRegHeadroom)
    return;
  // Decode one element in place each time the block runs — the paper's
  // rewrite-per-read pattern (XOR is involutive, so repeated visits just
  // toggle the encoding; nothing ever consumes the value).
  Reg Idx = Reg(NextReg++);
  Reg E = Reg(NextReg++);
  Reg K = Reg(NextReg++);
  Reg D = Reg(NextReg++);
  B.append(ConstInst::makeInt(Idx, int64_t(R.nextBelow(8))));
  B.append(new LoadElemInst(E, TabReg, Idx));
  B.append(ConstInst::makeInt(K, StringKey));
  B.append(new BinInst(BinOp::Xor, D, E, K));
  B.append(new StoreElemInst(TabReg, Idx, D));
  Injected += 5;
}
