//===- ir/Verifier.cpp - Structural IR validation --------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"

#include <functional>

using namespace lud;

namespace {

/// Collects defects for one function at a time.
class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const Function &F,
                   std::vector<std::string> &Errors)
      : M(M), F(F), Errors(Errors) {}

  void run() {
    if (F.blocks().empty()) {
      error("function has no blocks");
      return;
    }
    for (const auto &BB : F.blocks())
      verifyBlock(*BB);
  }

private:
  void error(const std::string &Msg) {
    Errors.push_back("in " + F.getName() + ": " + Msg);
  }

  void checkReg(Reg R, const char *What) {
    if (R != kNoReg && R >= F.getNumRegs())
      error(std::string(What) + " register r" + std::to_string(R) +
            " out of range (frame has " + std::to_string(F.getNumRegs()) +
            ")");
  }

  void checkUseReg(Reg R, const char *What) {
    if (R == kNoReg) {
      error(std::string(What) + " register is the kNoReg sentinel");
      return;
    }
    checkReg(R, What);
  }

  void checkBlock(uint32_t B) {
    if (B >= F.blocks().size())
      error("branch target bb" + std::to_string(B) + " out of range");
  }

  void checkFieldAccess(ClassId C, FieldSlot Slot) {
    if (C >= M.classes().size()) {
      error("field access names unknown class");
      return;
    }
    if (Slot >= M.getClass(C)->NumSlots)
      error("field slot " + std::to_string(Slot) + " out of range for class " +
            M.getClass(C)->getName());
  }

  void verifyBlock(const BasicBlock &BB) {
    if (BB.empty()) {
      error("bb" + std::to_string(BB.getId()) + " is empty");
      return;
    }
    for (const auto &IPtr : BB.insts()) {
      const Instruction *I = IPtr.get();
      bool IsLast = (I == BB.terminator());
      if (I->isTerminator() != IsLast)
        error("bb" + std::to_string(BB.getId()) +
              (IsLast ? " does not end with a terminator"
                      : " has a terminator in the middle"));
      verifyInst(*I);
    }
  }

  void verifyInst(const Instruction &I) {
    switch (I.getKind()) {
    case Instruction::Kind::Const:
      checkUseReg(cast<ConstInst>(&I)->Dst, "dst");
      break;
    case Instruction::Kind::Assign: {
      const auto *A = cast<AssignInst>(&I);
      checkUseReg(A->Dst, "dst");
      checkUseReg(A->Src, "src");
      break;
    }
    case Instruction::Kind::Bin: {
      const auto *B = cast<BinInst>(&I);
      checkUseReg(B->Dst, "dst");
      checkUseReg(B->Lhs, "lhs");
      checkUseReg(B->Rhs, "rhs");
      break;
    }
    case Instruction::Kind::Un: {
      const auto *U = cast<UnInst>(&I);
      checkUseReg(U->Dst, "dst");
      checkUseReg(U->Src, "src");
      break;
    }
    case Instruction::Kind::Alloc: {
      const auto *A = cast<AllocInst>(&I);
      checkUseReg(A->Dst, "dst");
      if (A->Class >= M.classes().size())
        error("alloc of unknown class");
      if (A->Site == kNoAllocSite)
        error("alloc site not numbered (module not finalized?)");
      break;
    }
    case Instruction::Kind::AllocArray: {
      const auto *A = cast<AllocArrayInst>(&I);
      checkUseReg(A->Dst, "dst");
      checkUseReg(A->Len, "length");
      if (A->Site == kNoAllocSite)
        error("alloc site not numbered (module not finalized?)");
      break;
    }
    case Instruction::Kind::LoadField: {
      const auto *L = cast<LoadFieldInst>(&I);
      checkUseReg(L->Dst, "dst");
      checkUseReg(L->Base, "base");
      checkFieldAccess(L->Class, L->Slot);
      break;
    }
    case Instruction::Kind::StoreField: {
      const auto *S = cast<StoreFieldInst>(&I);
      checkUseReg(S->Base, "base");
      checkUseReg(S->Src, "src");
      checkFieldAccess(S->Class, S->Slot);
      break;
    }
    case Instruction::Kind::LoadStatic: {
      const auto *L = cast<LoadStaticInst>(&I);
      checkUseReg(L->Dst, "dst");
      if (L->Global >= M.globals().size())
        error("load of unknown global");
      break;
    }
    case Instruction::Kind::StoreStatic: {
      const auto *S = cast<StoreStaticInst>(&I);
      checkUseReg(S->Src, "src");
      if (S->Global >= M.globals().size())
        error("store to unknown global");
      break;
    }
    case Instruction::Kind::LoadElem: {
      const auto *L = cast<LoadElemInst>(&I);
      checkUseReg(L->Dst, "dst");
      checkUseReg(L->Base, "base");
      checkUseReg(L->Index, "index");
      break;
    }
    case Instruction::Kind::StoreElem: {
      const auto *S = cast<StoreElemInst>(&I);
      checkUseReg(S->Base, "base");
      checkUseReg(S->Index, "index");
      checkUseReg(S->Src, "src");
      break;
    }
    case Instruction::Kind::ArrayLen: {
      const auto *A = cast<ArrayLenInst>(&I);
      checkUseReg(A->Dst, "dst");
      checkUseReg(A->Base, "base");
      break;
    }
    case Instruction::Kind::Call: {
      const auto *C = cast<CallInst>(&I);
      checkReg(C->Dst, "dst");
      for (Reg A : C->Args)
        checkUseReg(A, "argument");
      if (C->isVirtual()) {
        if (C->Args.empty())
          error("virtual call without a receiver");
        if (C->Method >= M.methodNames().size())
          error("virtual call of unknown method name");
      } else {
        if (C->Callee >= M.functions().size()) {
          error("direct call of unknown function");
          break;
        }
        const Function *Callee = M.getFunction(C->Callee);
        if (C->Args.size() != Callee->getNumParams())
          error("call to " + Callee->getName() + " passes " +
                std::to_string(C->Args.size()) + " args, expected " +
                std::to_string(Callee->getNumParams()));
      }
      break;
    }
    case Instruction::Kind::NativeCall: {
      const auto *N = cast<NativeCallInst>(&I);
      checkReg(N->Dst, "dst");
      if (N->Native >= M.nativeNames().size())
        error("native call of unknown native");
      for (Reg A : N->Args)
        checkUseReg(A, "argument");
      break;
    }
    case Instruction::Kind::Br:
      checkBlock(cast<BrInst>(&I)->Target);
      break;
    case Instruction::Kind::CondBr: {
      const auto *C = cast<CondBrInst>(&I);
      checkUseReg(C->Lhs, "lhs");
      checkUseReg(C->Rhs, "rhs");
      checkBlock(C->TrueBlock);
      checkBlock(C->FalseBlock);
      break;
    }
    case Instruction::Kind::Return:
      checkReg(cast<ReturnInst>(&I)->Src, "return");
      break;
    }
  }

  const Module &M;
  const Function &F;
  std::vector<std::string> &Errors;
};

/// Calls \p Use for every register \p I reads and \p Def for the register
/// it writes (if any). kNoReg operands are skipped.
void visitRegs(const Instruction &I, const std::function<void(Reg)> &Use,
               const std::function<void(Reg)> &Def) {
  auto U = [&](Reg R) {
    if (R != kNoReg)
      Use(R);
  };
  auto D = [&](Reg R) {
    if (R != kNoReg)
      Def(R);
  };
  switch (I.getKind()) {
  case Instruction::Kind::Const:
    D(cast<ConstInst>(&I)->Dst);
    break;
  case Instruction::Kind::Assign: {
    const auto *A = cast<AssignInst>(&I);
    U(A->Src);
    D(A->Dst);
    break;
  }
  case Instruction::Kind::Bin: {
    const auto *B = cast<BinInst>(&I);
    U(B->Lhs);
    U(B->Rhs);
    D(B->Dst);
    break;
  }
  case Instruction::Kind::Un: {
    const auto *N = cast<UnInst>(&I);
    U(N->Src);
    D(N->Dst);
    break;
  }
  case Instruction::Kind::Alloc:
    D(cast<AllocInst>(&I)->Dst);
    break;
  case Instruction::Kind::AllocArray: {
    const auto *A = cast<AllocArrayInst>(&I);
    U(A->Len);
    D(A->Dst);
    break;
  }
  case Instruction::Kind::LoadField: {
    const auto *L = cast<LoadFieldInst>(&I);
    U(L->Base);
    D(L->Dst);
    break;
  }
  case Instruction::Kind::StoreField: {
    const auto *S = cast<StoreFieldInst>(&I);
    U(S->Base);
    U(S->Src);
    break;
  }
  case Instruction::Kind::LoadStatic:
    D(cast<LoadStaticInst>(&I)->Dst);
    break;
  case Instruction::Kind::StoreStatic:
    U(cast<StoreStaticInst>(&I)->Src);
    break;
  case Instruction::Kind::LoadElem: {
    const auto *L = cast<LoadElemInst>(&I);
    U(L->Base);
    U(L->Index);
    D(L->Dst);
    break;
  }
  case Instruction::Kind::StoreElem: {
    const auto *S = cast<StoreElemInst>(&I);
    U(S->Base);
    U(S->Index);
    U(S->Src);
    break;
  }
  case Instruction::Kind::ArrayLen: {
    const auto *A = cast<ArrayLenInst>(&I);
    U(A->Base);
    D(A->Dst);
    break;
  }
  case Instruction::Kind::Call: {
    const auto *C = cast<CallInst>(&I);
    for (Reg A : C->Args)
      U(A);
    D(C->Dst);
    break;
  }
  case Instruction::Kind::NativeCall: {
    const auto *N = cast<NativeCallInst>(&I);
    for (Reg A : N->Args)
      U(A);
    D(N->Dst);
    break;
  }
  case Instruction::Kind::Br:
    break;
  case Instruction::Kind::CondBr: {
    const auto *C = cast<CondBrInst>(&I);
    U(C->Lhs);
    U(C->Rhs);
    break;
  }
  case Instruction::Kind::Return:
    U(cast<ReturnInst>(&I)->Src);
    break;
  }
}

/// The generator post-condition: every register a function reads is a
/// parameter or written by some instruction of the same function. Plain
/// verifyModule allows reading never-written registers (they hold the
/// default Int 0), which is fine for minimized repros but in generated
/// code always indicates a generator bug.
void checkUsesAreDefined(const Function &F,
                         std::vector<std::string> &Errors) {
  std::vector<bool> Defined(F.getNumRegs(), false);
  for (unsigned P = 0; P != F.getNumParams() && P < Defined.size(); ++P)
    Defined[P] = true;
  for (const auto &BB : F.blocks())
    for (const auto &IPtr : BB->insts())
      visitRegs(
          *IPtr, [](Reg) {},
          [&](Reg R) {
            if (R < Defined.size())
              Defined[R] = true;
          });
  for (const auto &BB : F.blocks())
    for (const auto &IPtr : BB->insts())
      visitRegs(
          *IPtr,
          [&](Reg R) {
            if (R < Defined.size() && !Defined[R])
              Errors.push_back("in " + F.getName() + ": r" +
                               std::to_string(R) +
                               " is read but never written");
          },
          [](Reg) {});
}

} // namespace

bool lud::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  if (!M.isFinalized())
    Errors.push_back("module is not finalized");
  for (const auto &F : M.functions())
    FunctionVerifier(M, *F, Errors).run();
  FuncId Entry = M.getEntry();
  if (Entry == kNoFunc)
    Errors.push_back("module has no entry function (expected 'main')");
  else if (M.getFunction(Entry)->getNumParams() != 0)
    Errors.push_back("entry function must take no parameters");
  return Errors.size() == Before;
}

bool lud::verifyGeneratedModule(const Module &M,
                                std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  verifyModule(M, Errors);
  for (const auto &F : M.functions())
    checkUsesAreDefined(*F, Errors);
  return Errors.size() == Before;
}
