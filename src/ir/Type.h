//===- ir/Type.h - Simple value and field types ----------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small dynamic type universe of the interpreted language: 64-bit
/// integers, doubles, object references, and one-dimensional arrays of each.
/// Registers are dynamically typed; Type only annotates class fields and
/// globals for documentation, reporting and verification.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_TYPE_H
#define LUD_IR_TYPE_H

#include "ir/Ids.h"

namespace lud {

enum class TypeKind : uint8_t {
  Int,
  Float,
  Ref,
  IntArray,
  FloatArray,
  RefArray,
};

/// A field/global type: a kind plus, for Ref and RefArray, the class of the
/// referenced object (kNoClass when unconstrained).
struct Type {
  TypeKind Kind = TypeKind::Int;
  ClassId Class = kNoClass;

  static Type makeInt() { return {TypeKind::Int, kNoClass}; }
  static Type makeFloat() { return {TypeKind::Float, kNoClass}; }
  static Type makeRef(ClassId C = kNoClass) { return {TypeKind::Ref, C}; }
  static Type makeArray(TypeKind Elem, ClassId C = kNoClass) {
    switch (Elem) {
    case TypeKind::Int:
      return {TypeKind::IntArray, kNoClass};
    case TypeKind::Float:
      return {TypeKind::FloatArray, kNoClass};
    case TypeKind::Ref:
      return {TypeKind::RefArray, C};
    default:
      return {TypeKind::IntArray, kNoClass};
    }
  }

  bool isRefLike() const {
    return Kind == TypeKind::Ref || isArray();
  }
  bool isArray() const {
    return Kind == TypeKind::IntArray || Kind == TypeKind::FloatArray ||
           Kind == TypeKind::RefArray;
  }
  /// Element kind for array types.
  TypeKind elementKind() const {
    switch (Kind) {
    case TypeKind::IntArray:
      return TypeKind::Int;
    case TypeKind::FloatArray:
      return TypeKind::Float;
    case TypeKind::RefArray:
      return TypeKind::Ref;
    default:
      return TypeKind::Int;
    }
  }
};

/// Returns a printable name for \p K ("int", "float", "ref", ...).
const char *typeKindName(TypeKind K);

} // namespace lud

#endif // LUD_IR_TYPE_H
