//===- ir/Rewrite.cpp - Instruction-level module rewriting -----------------===//

#include "ir/Rewrite.h"

#include "ir/Clone.h"
#include "support/ErrorHandling.h"

#include <cassert>
#include <limits>

using namespace lud;

ModuleRewriter::ModuleRewriter(const Module &M) : M(M) {
  assert(M.isFinalized() && "rewriter needs the dense InstrId numbering");
}

ModuleRewriter::~ModuleRewriter() {
  if (Applied)
    return;
  for (auto &[Id, E] : Edits) {
    (void)Id;
    for (Instruction *I : E.Before)
      delete I;
    for (Instruction *I : E.New)
      delete I;
  }
}

void ModuleRewriter::drop(InstrId Id) {
  assert(!Applied && "rewriter already applied");
  assert(!M.getInstr(Id)->isTerminator() &&
         "terminators cannot be dropped; replace them instead");
  Edit &E = Edits[Id];
  assert(!E.Replaced && "instruction already replaced");
  E.Dropped = true;
}

void ModuleRewriter::replaceWith(InstrId Id, std::vector<Instruction *> New) {
  assert(!Applied && "rewriter already applied");
  Edit &E = Edits[Id];
  assert(!E.Dropped && !E.Replaced && "instruction already edited");
  assert(!New.empty() && "use drop() to delete an instruction");
  if (M.getInstr(Id)->isTerminator())
    assert(New.back()->isTerminator() &&
           "replacing a terminator requires a terminator sequence");
  E.Replaced = true;
  E.New = std::move(New);
}

void ModuleRewriter::insertBefore(InstrId Id, std::vector<Instruction *> New) {
  assert(!Applied && "rewriter already applied");
  Edit &E = Edits[Id];
  E.Before.insert(E.Before.end(), New.begin(), New.end());
}

Reg ModuleRewriter::newReg(FuncId F) {
  assert(!Applied && "rewriter already applied");
  uint32_t &Extra = ExtraRegs[F];
  uint32_t R = M.getFunction(F)->getNumRegs() + Extra;
  assert(R < std::numeric_limits<Reg>::max() && "register frame overflow");
  ++Extra;
  return Reg(R);
}

GlobalId ModuleRewriter::addGlobal(std::string Name, Type Ty) {
  assert(!Applied && "rewriter already applied");
  NewGlobals.push_back(GlobalDecl{std::move(Name), Ty});
  return GlobalId(M.globals().size() + NewGlobals.size() - 1);
}

FuncId ModuleRewriter::nextFuncId() const {
  return FuncId(M.functions().size() + NewFuncs.size());
}

FuncId ModuleRewriter::addFunction(std::function<void(Module &)> Emit) {
  assert(!Applied && "rewriter already applied");
  FuncId Id = nextFuncId();
  NewFuncs.push_back(std::move(Emit));
  return Id;
}

bool ModuleRewriter::changed() const {
  return !Edits.empty() || !NewGlobals.empty() || !NewFuncs.empty() ||
         !ExtraRegs.empty();
}

std::unique_ptr<Module> ModuleRewriter::apply() {
  assert(!Applied && "rewriter is single-shot");
  Applied = true;

  auto Out = std::make_unique<Module>();

  // Interned names first so MethodNameId / NativeId values carry over,
  // then classes and globals in declaration order (same order => same
  // ids) — the same recipe as cloneModule.
  for (const std::string &Name : M.methodNames())
    Out->internMethodName(Name);
  for (const std::string &Name : M.nativeNames())
    Out->internNativeName(Name);
  for (const auto &C : M.classes()) {
    ClassDecl *NC = Out->addClass(C->getName(), C->getSuper());
    for (const FieldDecl &F : C->ownFields())
      NC->addField(F.Name, F.Ty);
    for (const auto &[Method, Func] : C->ownMethods())
      NC->addMethod(Method, Func);
  }
  for (const GlobalDecl &G : M.globals())
    Out->addGlobal(G.Name, G.Ty);
  for (GlobalDecl &G : NewGlobals)
    Out->addGlobal(std::move(G.Name), G.Ty);

  for (const auto &F : M.functions()) {
    unsigned Extra = 0;
    if (auto It = ExtraRegs.find(F->getId()); It != ExtraRegs.end())
      Extra = It->second;
    Function *NF = Out->addFunction(F->getName(), F->getNumParams(),
                                    F->getNumRegs() + Extra, F->getOwner());
    for (const auto &BB : F->blocks()) {
      BasicBlock *NB = NF->addBlock();
      for (const auto &I : BB->insts()) {
        auto It = Edits.find(I->getId());
        if (It == Edits.end()) {
          NB->append(cloneInstr(*I));
          continue;
        }
        Edit &E = It->second;
        for (Instruction *NI : E.Before)
          NB->append(NI);
        E.Before.clear();
        if (E.Replaced) {
          for (Instruction *NI : E.New)
            NB->append(NI);
          E.New.clear();
        } else if (!E.Dropped) {
          NB->append(cloneInstr(*I));
        }
      }
    }
  }

  for (auto &Emit : NewFuncs)
    Emit(*Out);

  if (M.getEntry() != kNoFunc)
    Out->setEntry(M.getEntry());
  Out->finalize();
  return Out;
}

//===----------------------------------------------------------------------===
// Shared instruction-shape helpers.
//===----------------------------------------------------------------------===

Reg lud::definedReg(const Instruction &I) {
  switch (I.getKind()) {
  case Instruction::Kind::Const:
    return cast<ConstInst>(&I)->Dst;
  case Instruction::Kind::Assign:
    return cast<AssignInst>(&I)->Dst;
  case Instruction::Kind::Bin:
    return cast<BinInst>(&I)->Dst;
  case Instruction::Kind::Un:
    return cast<UnInst>(&I)->Dst;
  case Instruction::Kind::Alloc:
    return cast<AllocInst>(&I)->Dst;
  case Instruction::Kind::AllocArray:
    return cast<AllocArrayInst>(&I)->Dst;
  case Instruction::Kind::LoadField:
    return cast<LoadFieldInst>(&I)->Dst;
  case Instruction::Kind::LoadStatic:
    return cast<LoadStaticInst>(&I)->Dst;
  case Instruction::Kind::LoadElem:
    return cast<LoadElemInst>(&I)->Dst;
  case Instruction::Kind::ArrayLen:
    return cast<ArrayLenInst>(&I)->Dst;
  case Instruction::Kind::Call:
    return cast<CallInst>(&I)->Dst;
  case Instruction::Kind::NativeCall:
    return cast<NativeCallInst>(&I)->Dst;
  case Instruction::Kind::StoreField:
  case Instruction::Kind::StoreStatic:
  case Instruction::Kind::StoreElem:
  case Instruction::Kind::Br:
  case Instruction::Kind::CondBr:
  case Instruction::Kind::Return:
    return kNoReg;
  }
  lud_unreachable("unknown instruction kind");
}

Reg lud::pureProducerDst(const Instruction &I) {
  switch (I.getKind()) {
  case Instruction::Kind::Const:
  case Instruction::Kind::Assign:
  case Instruction::Kind::Bin:
  case Instruction::Kind::Un:
  case Instruction::Kind::Alloc:
  case Instruction::Kind::AllocArray:
  // Loads are pure value producers too; their only side effect is a
  // potential trap, which profile evidence shows does not fire.
  case Instruction::Kind::LoadField:
  case Instruction::Kind::LoadStatic:
  case Instruction::Kind::LoadElem:
  case Instruction::Kind::ArrayLen:
    return definedReg(I);
  default:
    return kNoReg;
  }
}

void lud::appendUsedRegs(const Instruction &I, std::vector<Reg> &Out) {
  switch (I.getKind()) {
  case Instruction::Kind::Const:
  case Instruction::Kind::Alloc:
  case Instruction::Kind::LoadStatic:
  case Instruction::Kind::Br:
    break;
  case Instruction::Kind::Assign:
    Out.push_back(cast<AssignInst>(&I)->Src);
    break;
  case Instruction::Kind::Bin: {
    const auto *B = cast<BinInst>(&I);
    Out.push_back(B->Lhs);
    Out.push_back(B->Rhs);
    break;
  }
  case Instruction::Kind::Un:
    Out.push_back(cast<UnInst>(&I)->Src);
    break;
  case Instruction::Kind::AllocArray:
    Out.push_back(cast<AllocArrayInst>(&I)->Len);
    break;
  case Instruction::Kind::LoadField:
    Out.push_back(cast<LoadFieldInst>(&I)->Base);
    break;
  case Instruction::Kind::StoreField: {
    const auto *S = cast<StoreFieldInst>(&I);
    Out.push_back(S->Base);
    Out.push_back(S->Src);
    break;
  }
  case Instruction::Kind::StoreStatic:
    Out.push_back(cast<StoreStaticInst>(&I)->Src);
    break;
  case Instruction::Kind::LoadElem: {
    const auto *L = cast<LoadElemInst>(&I);
    Out.push_back(L->Base);
    Out.push_back(L->Index);
    break;
  }
  case Instruction::Kind::StoreElem: {
    const auto *S = cast<StoreElemInst>(&I);
    Out.push_back(S->Base);
    Out.push_back(S->Index);
    Out.push_back(S->Src);
    break;
  }
  case Instruction::Kind::ArrayLen:
    Out.push_back(cast<ArrayLenInst>(&I)->Base);
    break;
  case Instruction::Kind::Call:
    for (Reg A : cast<CallInst>(&I)->Args)
      Out.push_back(A);
    break;
  case Instruction::Kind::NativeCall:
    for (Reg A : cast<NativeCallInst>(&I)->Args)
      Out.push_back(A);
    break;
  case Instruction::Kind::CondBr: {
    const auto *C = cast<CondBrInst>(&I);
    Out.push_back(C->Lhs);
    Out.push_back(C->Rhs);
    break;
  }
  case Instruction::Kind::Return:
    if (cast<ReturnInst>(&I)->Src != kNoReg)
      Out.push_back(cast<ReturnInst>(&I)->Src);
    break;
  }
}
