//===- ir/ClassDecl.h - Class declarations and layouts ---------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classes with single inheritance, named/typed fields, and virtual method
/// tables. Object layouts place superclass fields first; a class's first
/// slot is computed lazily the first time one of its fields is resolved,
/// which freezes the superclass's field list.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_CLASSDECL_H
#define LUD_IR_CLASSDECL_H

#include "ir/Ids.h"
#include "ir/Type.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace lud {

/// A field declared directly on a class (not inherited).
struct FieldDecl {
  std::string Name;
  Type Ty;
};

/// A class declaration. Use Module::resolveField to obtain layout slots;
/// Module::finalize() flattens vtables.
class ClassDecl {
public:
  ClassDecl(ClassId Id, std::string Name, ClassId Super)
      : Id(Id), Name(std::move(Name)), Super(Super) {}

  /// Declares a field on this class; returns its index among own fields.
  /// The layout slot is FirstSlot + index, available via Module.
  uint32_t addField(std::string Name, Type Ty) {
    assert(!LayoutFrozen &&
           "cannot add fields after a subclass layout was computed");
    OwnFields.push_back({std::move(Name), Ty});
    return OwnFields.size() - 1;
  }

  /// Registers \p Func as the implementation of virtual method \p Method on
  /// this class (overrides any inherited binding after finalize).
  void addMethod(MethodNameId Method, FuncId Func) { OwnMethods[Method] = Func; }

  ClassId getId() const { return Id; }
  const std::string &getName() const { return Name; }
  ClassId getSuper() const { return Super; }
  const std::vector<FieldDecl> &ownFields() const { return OwnFields; }
  const std::unordered_map<MethodNameId, FuncId> &ownMethods() const {
    return OwnMethods;
  }

  /// Flattened method table (inherited + own, own wins); valid after
  /// Module::finalize().
  std::unordered_map<MethodNameId, FuncId> Vtable;
  /// Total layout slots including inherited fields; valid after finalize.
  uint32_t NumSlots = 0;

private:
  friend class Module;

  ClassId Id;
  std::string Name;
  ClassId Super;
  std::vector<FieldDecl> OwnFields;
  std::unordered_map<MethodNameId, FuncId> OwnMethods;

  // Lazy layout cache, maintained by Module::classFirstSlot.
  mutable FieldSlot FirstSlot = 0;
  mutable bool FirstSlotKnown = false;
  mutable bool LayoutFrozen = false;
};

/// A module-level static variable (the paper's A.f statics).
struct GlobalDecl {
  std::string Name;
  Type Ty;
};

} // namespace lud

#endif // LUD_IR_CLASSDECL_H
