//===- ir/Verifier.h - Structural IR validation ----------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks run after Module::finalize(): register/block/field/
/// callee indices are in range, blocks end in exactly one terminator, the
/// entry point exists. Dynamic typing is intentionally not checked.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_VERIFIER_H
#define LUD_IR_VERIFIER_H

#include <string>
#include <vector>

namespace lud {

class Module;

/// Appends one message per defect to \p Errors. Returns true when clean.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

/// verifyModule plus the generator post-condition: every register an
/// instruction reads must be a parameter or written somewhere in the same
/// function. Hand-written and minimized modules may legitimately read
/// default-initialized registers, so this is a separate, stricter entry
/// point used on generated programs only.
bool verifyGeneratedModule(const Module &M, std::vector<std::string> &Errors);

} // namespace lud

#endif // LUD_IR_VERIFIER_H
