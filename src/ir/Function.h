//===- ir/Function.h - Basic blocks and functions --------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock and Function: straight-line instruction sequences ended by a
/// terminator, grouped into functions with a flat virtual register frame.
/// Parameters occupy registers [0, NumParams); instance methods receive
/// `this` in register 0.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_FUNCTION_H
#define LUD_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace lud {

/// A sequence of instructions whose last element is a terminator.
class BasicBlock {
public:
  explicit BasicBlock(uint32_t Id) : Id(Id) {}

  /// Appends \p I and takes ownership. Returns \p I for chaining.
  Instruction *append(Instruction *I) {
    I->Parent = this;
    Insts.emplace_back(I);
    return I;
  }

  uint32_t getId() const { return Id; }
  const std::vector<std::unique_ptr<Instruction>> &insts() const {
    return Insts;
  }
  bool empty() const { return Insts.empty(); }
  Instruction *terminator() const {
    return Insts.empty() ? nullptr : Insts.back().get();
  }

private:
  uint32_t Id;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

/// A function: name, register frame size, and basic blocks (block 0 is the
/// entry). Instance methods carry their owning class; they participate in
/// virtual dispatch and extend the receiver-object context chain.
class Function {
public:
  Function(FuncId Id, std::string Name, unsigned NumParams, unsigned NumRegs,
           ClassId Owner = kNoClass)
      : Id(Id), Name(std::move(Name)), NumParams(NumParams), NumRegs(NumRegs),
        Owner(Owner) {}

  /// Creates, owns and returns a new basic block.
  BasicBlock *addBlock() {
    Blocks.emplace_back(std::make_unique<BasicBlock>(Blocks.size()));
    return Blocks.back().get();
  }

  FuncId getId() const { return Id; }
  const std::string &getName() const { return Name; }
  unsigned getNumParams() const { return NumParams; }
  unsigned getNumRegs() const { return NumRegs; }
  void setNumRegs(unsigned N) { NumRegs = N; }
  ClassId getOwner() const { return Owner; }
  bool isMethod() const { return Owner != kNoClass; }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  BasicBlock *getBlock(uint32_t I) const {
    assert(I < Blocks.size() && "block index out of range");
    return Blocks[I].get();
  }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no entry block");
    return Blocks.front().get();
  }

private:
  FuncId Id;
  std::string Name;
  unsigned NumParams;
  unsigned NumRegs;
  ClassId Owner;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace lud

#endif // LUD_IR_FUNCTION_H
