//===- ir/Module.h - Top-level program container ---------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module owns classes, functions, globals and interned method/native names,
/// and assigns the dense instruction / allocation-site numbering the
/// profiler keys its flat tables on. After construction call finalize()
/// exactly once before execution.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_MODULE_H
#define LUD_IR_MODULE_H

#include "ir/ClassDecl.h"
#include "ir/Function.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lud {

class OutStream;

/// Pseudo field slots used when reporting array locations: all elements of
/// an array are one abstract location (the paper's O.ELM), and the length
/// behaves like an immutable field.
inline constexpr FieldSlot kElemSlot = 0xFFFFFFFD;
inline constexpr FieldSlot kLenSlot = 0xFFFFFFFE;

class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  //===--------------------------------------------------------------------===
  // Construction API (used by IRBuilder and the parser).
  //===--------------------------------------------------------------------===

  /// Creates a class; \p Super must already exist when not kNoClass.
  ClassDecl *addClass(std::string Name, ClassId Super = kNoClass);

  /// Creates a function. Instance methods pass their owner class; the
  /// receiver is parameter 0.
  Function *addFunction(std::string Name, unsigned NumParams,
                        unsigned NumRegs, ClassId Owner = kNoClass);

  /// Declares a module-level static variable.
  GlobalId addGlobal(std::string Name, Type Ty);

  /// Interns a virtual method name.
  MethodNameId internMethodName(const std::string &Name);

  /// Interns a native function name (bound to an implementation by the
  /// runtime's NativeRegistry at execution time).
  NativeId internNativeName(const std::string &Name);

  /// Computes class layouts and vtables, numbers instructions and
  /// allocation sites, and freezes the module. Must be called exactly once.
  void finalize();

  //===--------------------------------------------------------------------===
  // Queries.
  //===--------------------------------------------------------------------===

  bool isFinalized() const { return Finalized; }

  const std::vector<std::unique_ptr<ClassDecl>> &classes() const {
    return Classes;
  }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }
  const std::vector<GlobalDecl> &globals() const { return Globals; }
  const std::vector<std::string> &methodNames() const { return MethodNames; }
  const std::vector<std::string> &nativeNames() const { return NativeNames; }

  ClassDecl *getClass(ClassId Id) const {
    assert(Id < Classes.size() && "class id out of range");
    return Classes[Id].get();
  }
  Function *getFunction(FuncId Id) const {
    assert(Id < Functions.size() && "function id out of range");
    return Functions[Id].get();
  }

  /// Returns the class/function/global with the given name, or the sentinel.
  ClassId findClass(const std::string &Name) const;
  FuncId findFunction(const std::string &Name) const;
  GlobalId findGlobal(const std::string &Name) const;
  MethodNameId findMethodName(const std::string &Name) const;

  /// Layout slot of the first own field of \p Class (computed lazily; the
  /// first query freezes the superclass chain's field lists).
  FieldSlot classFirstSlot(ClassId Class) const;

  /// Resolves field \p Name against the layout of \p Class (searching
  /// superclasses). Returns false if no such field.
  bool resolveField(ClassId Class, const std::string &Name,
                    FieldSlot &SlotOut) const;

  /// Resolves a field name against all classes; succeeds only if the name
  /// is unambiguous module-wide (used by the parser for unqualified names).
  bool resolveFieldUnqualified(const std::string &Name, ClassId &ClassOut,
                               FieldSlot &SlotOut) const;

  /// Printable name of the field at \p Slot in instances of \p Class.
  /// Understands the kElemSlot/kLenSlot pseudo slots.
  std::string fieldName(ClassId Class, FieldSlot Slot) const;

  /// Virtual dispatch: implementation of \p Method for exact class \p C.
  FuncId lookupMethod(ClassId C, MethodNameId Method) const;

  //===--------------------------------------------------------------------===
  // Dense numbering (valid after finalize()).
  //===--------------------------------------------------------------------===

  uint32_t getNumInstrs() const { return InstrTable.size(); }
  uint32_t getNumAllocSites() const { return AllocSiteTable.size(); }

  Instruction *getInstr(InstrId Id) const {
    assert(Id < InstrTable.size() && "instruction id out of range");
    return InstrTable[Id];
  }
  /// Function containing instruction \p Id.
  Function *getInstrFunction(InstrId Id) const {
    assert(Id < InstrOwner.size() && "instruction id out of range");
    return Functions[InstrOwner[Id]].get();
  }
  /// The allocation instruction for site \p Site (Alloc or AllocArray).
  Instruction *getAllocSite(AllocSiteId Site) const {
    assert(Site < AllocSiteTable.size() && "alloc site out of range");
    return AllocSiteTable[Site];
  }
  /// Human-readable description of an allocation site, e.g.
  /// "new List @ chart.buildDataset".
  std::string describeAllocSite(AllocSiteId Site) const;

  /// Entry point (function named "main" unless overridden).
  FuncId getEntry() const;
  void setEntry(FuncId F) { Entry = F; }

private:
  bool Finalized = false;
  std::vector<std::unique_ptr<ClassDecl>> Classes;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<GlobalDecl> Globals;
  std::vector<std::string> MethodNames;
  std::vector<std::string> NativeNames;
  std::unordered_map<std::string, ClassId> ClassByName;
  std::unordered_map<std::string, FuncId> FuncByName;
  std::unordered_map<std::string, GlobalId> GlobalByName;
  std::unordered_map<std::string, MethodNameId> MethodNameIds;
  std::unordered_map<std::string, NativeId> NativeNameIds;

  std::vector<Instruction *> InstrTable;
  std::vector<FuncId> InstrOwner;
  std::vector<Instruction *> AllocSiteTable;

  FuncId Entry = kNoFunc;
};

} // namespace lud

#endif // LUD_IR_MODULE_H
