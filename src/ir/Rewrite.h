//===- ir/Rewrite.h - Instruction-level module rewriting -------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ModuleRewriter: builder-based structure substitution over ir/Clone.h.
/// A rewriter records edits against a finalized source module — drop an
/// instruction, replace it with a fresh sequence, insert before it, add
/// registers/globals/functions — and apply() materializes them as a fresh
/// finalized module, leaving the source untouched. This is the mechanical
/// substrate the profile-guided rewrite passes (analysis/PassManager.h)
/// stand on: passes decide *what* to substitute from profile evidence, the
/// rewriter guarantees the surgery itself is shape-preserving (terminators
/// stay terminators, ids renumber densely through Module::finalize()).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_REWRITE_H
#define LUD_IR_REWRITE_H

#include "ir/Module.h"

#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace lud {

/// Records instruction-level edits against a finalized module and builds
/// the rewritten module on demand. Edits are keyed by the source module's
/// dense InstrIds, which stay valid until apply() — the output module
/// renumbers densely via finalize(), exactly like cloneModule.
class ModuleRewriter {
public:
  explicit ModuleRewriter(const Module &M);
  ~ModuleRewriter();
  ModuleRewriter(const ModuleRewriter &) = delete;
  ModuleRewriter &operator=(const ModuleRewriter &) = delete;

  /// Drops instruction \p Id from the output. Terminators cannot be
  /// dropped — replace them with another terminator sequence instead.
  void drop(InstrId Id);

  /// Replaces instruction \p Id with \p New (ownership transfers). If the
  /// original is a terminator, the last replacement instruction must be a
  /// terminator too.
  void replaceWith(InstrId Id, std::vector<Instruction *> New);

  /// Inserts \p New (ownership transfers) immediately before instruction
  /// \p Id; composes with drop/replaceWith on the same id.
  void insertBefore(InstrId Id, std::vector<Instruction *> New);

  /// Allocates a fresh virtual register in function \p F of the output.
  Reg newReg(FuncId F);

  /// Declares a module-level static in the output; the returned id is
  /// valid in replacement instructions (it numbers after the source's
  /// globals in declaration order).
  GlobalId addGlobal(std::string Name, Type Ty);

  /// Id the next addFunction() body will receive in the output module
  /// (source functions keep their ids; synthesized ones append).
  FuncId nextFuncId() const;

  /// Schedules \p Emit to run against the output module after the source
  /// functions are cloned: build exactly one function per callback (via
  /// Module::addFunction + BasicBlock::append or an IRBuilder). Returns
  /// the function id the body will receive.
  FuncId addFunction(std::function<void(Module &)> Emit);

  /// True once any edit or addition has been recorded.
  bool changed() const;

  /// Materializes the rewritten module (single-shot; the rewriter is
  /// spent afterwards). The output is finalized.
  std::unique_ptr<Module> apply();

private:
  struct Edit {
    bool Dropped = false;
    bool Replaced = false;
    std::vector<Instruction *> Before;
    std::vector<Instruction *> New;
  };

  const Module &M;
  bool Applied = false;
  std::map<InstrId, Edit> Edits;
  std::map<FuncId, uint32_t> ExtraRegs;
  std::vector<GlobalDecl> NewGlobals;
  std::vector<std::function<void(Module &)>> NewFuncs;
};

//===----------------------------------------------------------------------===
// Shared instruction-shape helpers (used by the optimizer passes and the
// dead-code eliminator; every switch below covers all 18 kinds).
//===----------------------------------------------------------------------===

/// Register defined by \p I, or kNoReg for pure consumers (stores,
/// branches, returns, void calls).
Reg definedReg(const Instruction &I);

/// Dst of a *pure producer* — an instruction that only computes a value
/// and may be dropped when that value is unused (Const/Assign/Bin/Un/
/// Alloc/AllocArray/loads). kNoReg for calls, stores and terminators.
Reg pureProducerDst(const Instruction &I);

/// Appends every register \p I reads to \p Out (Dst excluded).
void appendUsedRegs(const Instruction &I, std::vector<Reg> &Out);

} // namespace lud

#endif // LUD_IR_REWRITE_H
