//===- ir/Obfuscate.cpp - Adversarial obfuscation pass layer ---------------===//

#include "ir/Obfuscate.h"

#include "ir/Clone.h"
#include "ir/ObfuscateImpl.h"
#include "support/ErrorHandling.h"

#include <algorithm>

using namespace lud;
using namespace lud::detail;

const char *lud::obfKindName(ObfKind K) {
  switch (K) {
  case ObfKind::Junk:
    return "junk";
  case ObfKind::Opaque:
    return "opaque";
  case ObfKind::StringTable:
    return "strings";
  }
  lud_unreachable("unknown obfuscation kind");
}

bool lud::parseObfuscatePasses(const std::string &Spec, ObfuscateOptions &Opts,
                               std::string &Err) {
  bool Any = false;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Name = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Name == "all") {
      Opts.Junk = Opts.Opaque = Opts.Strings = true;
      Any = true;
    } else if (Name == "junk") {
      Opts.Junk = true;
      Any = true;
    } else if (Name == "opaque") {
      Opts.Opaque = true;
      Any = true;
    } else if (Name == "strings") {
      Opts.Strings = true;
      Any = true;
    } else if (!Name.empty()) {
      Err = "unknown obfuscation pass '" + Name +
            "' (expected junk, opaque, strings, or all)";
      return false;
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  if (!Any) {
    Err = "empty obfuscation pass list (expected junk, opaque, strings, "
          "or all)";
    return false;
  }
  return true;
}

bool Obfuscator::inScope(const Function &F) const {
  const std::string &Name = F.getName();
  for (const std::string &E : Opts.Exclude)
    if (Name == E)
      return false;
  if (Opts.Include.empty())
    return true;
  return std::find(Opts.Include.begin(), Opts.Include.end(), Name) !=
         Opts.Include.end();
}

ObfuscationResult Obfuscator::run() {
  Out = std::make_unique<Module>();

  // Mirror the source declarations in order, so every id carries over
  // (the cloneModule invariant; see ir/Clone.cpp).
  for (const std::string &Name : Src.methodNames())
    Out->internMethodName(Name);
  for (const std::string &Name : Src.nativeNames())
    Out->internNativeName(Name);
  for (const auto &C : Src.classes()) {
    ClassDecl *NC = Out->addClass(C->getName(), C->getSuper());
    for (const FieldDecl &F : C->ownFields())
      NC->addField(F.Name, F.Ty);
    for (const auto &[Method, Func] : C->ownMethods())
      NC->addMethod(Method, Func);
  }
  for (const GlobalDecl &G : Src.globals())
    Out->addGlobal(G.Name, G.Ty);

  // Injected declarations come after every mirrored one, with names
  // uniquified against the source module. Module-level draws happen
  // before any per-function split and have a fixed count per enabled
  // transform, keeping the whole rebuild deterministic.
  FuncId EntryFn = Src.getEntry();
  // Junk needs the entry function to install the accumulator the write
  // sites load; a module without one simply gets no junk.
  bool Junk = Opts.Junk && EntryFn != kNoFunc;
  if (Junk) {
    std::string Name = "ObfJunk";
    while (Src.findClass(Name) != kNoClass)
      Name += "_";
    ClassDecl *JC = Out->addClass(Name);
    JunkClass = JC->getId();
    std::string SinkName = "obf_sink";
    while (Src.findGlobal(SinkName) != kNoGlobal)
      SinkName += "_";
    JunkSink = Out->addGlobal(SinkName, Type::makeRef(JunkClass));
  }
  if (Opts.Opaque) {
    std::string Name = "obf_opaque";
    while (Src.findGlobal(Name) != kNoGlobal)
      Name += "_";
    OpaqueGlobal = Out->addGlobal(Name, Type::makeInt());
    OpaqueKey = int64_t(Root.nextBelow(1u << 20)) + 3;
  }
  if (Opts.Strings)
    StringKey = int64_t(Root.nextBelow(255)) + 1;

  for (const auto &F : Src.functions()) {
    Function *NF = Out->addFunction(F->getName(), F->getNumParams(),
                                    F->getNumRegs(), F->getOwner());
    unsigned NextReg = F->getNumRegs();
    RNG R = Root.split(F->getId());
    bool Scoped = inScope(*F);

    // Mirror blocks first so ids align; diversion blocks appended later
    // get ids past the original count and existing branch targets stay
    // valid unchanged.
    for (size_t I = 0; I != F->blocks().size(); ++I)
      NF->addBlock();

    Reg TabReg = kNoReg;
    bool Table = Opts.Strings && Scoped && !F->blocks().empty() &&
                 NextReg + 32 < 0xFF00u &&
                 R.nextBelow(100) < Opts.StringChance;
    if (Table)
      TabReg = Reg(NextReg++);

    for (size_t BI = 0; BI != F->blocks().size(); ++BI) {
      const BasicBlock &OB = *F->blocks()[BI];
      BasicBlock &NB = *NF->getBlock(uint32_t(BI));

      if (BI == 0) {
        // The accumulator install comes first: the entry block runs
        // before anything else, so every later junk write finds a live
        // object in the sink global.
        if (Junk && F->getId() == EntryFn)
          emitJunkAccumulator(NB, NextReg, F->getId());
        // The opaque global is established at the very top of the entry
        // function, before any guard can load it: the profiler observes a
        // genuinely invariant value it must prove constant.
        if (Opts.Opaque && F->getId() == EntryFn) {
          Reg K = Reg(NextReg++);
          NB.append(ConstInst::makeInt(K, OpaqueKey));
          NB.append(new StoreStaticInst(OpaqueGlobal, K));
          Injected += 2;
        }
        if (Table)
          emitStringTableBuild(NB, NextReg, TabReg, F->getName(),
                               F->getId());
      }

      for (const auto &I : OB.insts()) {
        if (I->isTerminator()) {
          // Injections land just before the terminator: the payload runs
          // exactly as often as the block does.
          if (Junk && Scoped && R.nextBelow(100) < Opts.JunkChance)
            emitJunk(NB, R, NextReg, F->getId());
          if (Table && R.nextBelow(100) < 70)
            emitStringDecode(NB, R, NextReg, TabReg);
          if (Opts.Opaque && Scoped && isa<BrInst>(I.get()) &&
              NextReg + 8 < kNoReg && R.nextBelow(100) < Opts.OpaqueChance) {
            Instruction *CB = emitOpaqueGuard(
                NB, *NF, R, NextReg, cast<BrInst>(I.get())->Target);
            Pending.push_back({ObfKind::Opaque, CB, F->getId()});
            continue; // the guard replaced this terminator
          }
        }
        NB.append(cloneInstr(*I));
      }
    }
    NF->setNumRegs(NextReg);
  }

  if (EntryFn != kNoFunc)
    Out->setEntry(EntryFn);
  Out->finalize();

  ObfuscationResult Res;
  for (const PendingTag &T : Pending) {
    ObfSiteTag Tag;
    Tag.Kind = T.Kind;
    Tag.Function = Src.getFunction(T.Func)->getName();
    Tag.Instr = T.I->getId();
    if (T.Kind == ObfKind::Opaque) {
      Tag.Description = "opaque predicate @ " + Tag.Function + " #" +
                        std::to_string(T.I->getId());
    } else {
      Tag.Site = isa<AllocInst>(T.I) ? cast<AllocInst>(T.I)->Site
                                     : cast<AllocArrayInst>(T.I)->Site;
      Tag.Description = Out->describeAllocSite(Tag.Site);
    }
    Res.Manifest.push_back(std::move(Tag));
  }
  Res.M = std::move(Out);
  Res.InjectedInstrs = Injected;
  return Res;
}

ObfuscationResult lud::obfuscateModule(const Module &M,
                                       const ObfuscateOptions &Opts) {
  return Obfuscator(M, Opts).run();
}
