//===- ir/Printer.cpp - Textual IR output ----------------------------------===//

#include "ir/Printer.h"

#include "ir/Module.h"
#include "support/ErrorHandling.h"
#include "support/OutStream.h"

#include <cstdio>

using namespace lud;

namespace {

std::string regName(Reg R) { return "r" + std::to_string(R); }

std::string typeName(const Module &M, Type Ty) {
  if (Ty.Kind == TypeKind::Ref && Ty.Class != kNoClass)
    return M.getClass(Ty.Class)->getName();
  return typeKindName(Ty.Kind);
}

std::string floatLit(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  std::string S(Buf);
  // Make the literal recognizably a float for the parser.
  if (S.find_first_of(".eEnN") == std::string::npos)
    S += ".0";
  return S;
}

std::string fieldRef(const Module &M, Reg Base, ClassId C, FieldSlot Slot) {
  return regName(Base) + "." + M.getClass(C)->getName() +
         "::" + M.fieldName(C, Slot);
}

std::string argList(const std::vector<Reg> &Args) {
  std::string S = "(";
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I)
      S += ", ";
    S += regName(Args[I]);
  }
  return S + ")";
}

} // namespace

std::string lud::instToString(const Module &M, const Instruction &I) {
  switch (I.getKind()) {
  case Instruction::Kind::Const: {
    const auto *C = cast<ConstInst>(&I);
    switch (C->Lit) {
    case ConstInst::LitKind::Int:
      return regName(C->Dst) + " = iconst " + std::to_string(C->IntVal);
    case ConstInst::LitKind::Float:
      return regName(C->Dst) + " = fconst " + floatLit(C->FloatVal);
    case ConstInst::LitKind::Null:
      return regName(C->Dst) + " = null";
    }
    lud_unreachable("unknown literal kind");
  }
  case Instruction::Kind::Assign: {
    const auto *A = cast<AssignInst>(&I);
    return regName(A->Dst) + " = " + regName(A->Src);
  }
  case Instruction::Kind::Bin: {
    const auto *B = cast<BinInst>(&I);
    return regName(B->Dst) + " = " + binOpName(B->Op) + " " +
           regName(B->Lhs) + ", " + regName(B->Rhs);
  }
  case Instruction::Kind::Un: {
    const auto *U = cast<UnInst>(&I);
    return regName(U->Dst) + " = " + unOpName(U->Op) + " " + regName(U->Src);
  }
  case Instruction::Kind::Alloc: {
    const auto *A = cast<AllocInst>(&I);
    return regName(A->Dst) + " = new " + M.getClass(A->Class)->getName();
  }
  case Instruction::Kind::AllocArray: {
    const auto *A = cast<AllocArrayInst>(&I);
    return regName(A->Dst) + " = newarray " + typeKindName(A->Elem) + ", " +
           regName(A->Len);
  }
  case Instruction::Kind::LoadField: {
    const auto *L = cast<LoadFieldInst>(&I);
    return regName(L->Dst) + " = " + fieldRef(M, L->Base, L->Class, L->Slot);
  }
  case Instruction::Kind::StoreField: {
    const auto *S = cast<StoreFieldInst>(&I);
    return fieldRef(M, S->Base, S->Class, S->Slot) + " = " + regName(S->Src);
  }
  case Instruction::Kind::LoadStatic: {
    const auto *L = cast<LoadStaticInst>(&I);
    return regName(L->Dst) + " = @" + M.globals()[L->Global].Name;
  }
  case Instruction::Kind::StoreStatic: {
    const auto *S = cast<StoreStaticInst>(&I);
    return "@" + M.globals()[S->Global].Name + " = " + regName(S->Src);
  }
  case Instruction::Kind::LoadElem: {
    const auto *L = cast<LoadElemInst>(&I);
    return regName(L->Dst) + " = " + regName(L->Base) + "[" +
           regName(L->Index) + "]";
  }
  case Instruction::Kind::StoreElem: {
    const auto *S = cast<StoreElemInst>(&I);
    return regName(S->Base) + "[" + regName(S->Index) + "] = " +
           regName(S->Src);
  }
  case Instruction::Kind::ArrayLen: {
    const auto *A = cast<ArrayLenInst>(&I);
    return regName(A->Dst) + " = len " + regName(A->Base);
  }
  case Instruction::Kind::Call: {
    const auto *C = cast<CallInst>(&I);
    std::string S;
    if (C->Dst != kNoReg)
      S = regName(C->Dst) + " = ";
    if (C->isVirtual())
      S += "vcall " + M.methodNames()[C->Method];
    else
      S += "call " + M.getFunction(C->Callee)->getName();
    return S + argList(C->Args);
  }
  case Instruction::Kind::NativeCall: {
    const auto *N = cast<NativeCallInst>(&I);
    std::string S;
    if (N->Dst != kNoReg)
      S = regName(N->Dst) + " = ";
    return S + "ncall " + M.nativeNames()[N->Native] + argList(N->Args);
  }
  case Instruction::Kind::Br:
    return "goto bb" + std::to_string(cast<BrInst>(&I)->Target);
  case Instruction::Kind::CondBr: {
    const auto *C = cast<CondBrInst>(&I);
    return std::string("if ") + regName(C->Lhs) + " " + cmpOpName(C->Cmp) +
           " " + regName(C->Rhs) + " goto bb" + std::to_string(C->TrueBlock) +
           " else bb" + std::to_string(C->FalseBlock);
  }
  case Instruction::Kind::Return: {
    const auto *R = cast<ReturnInst>(&I);
    return R->Src == kNoReg ? "ret" : "ret " + regName(R->Src);
  }
  }
  lud_unreachable("unknown instruction kind");
}

void lud::printModule(const Module &M, OutStream &OS) {
  for (const auto &C : M.classes()) {
    OS << "class " << C->getName();
    if (C->getSuper() != kNoClass)
      OS << " extends " << M.getClass(C->getSuper())->getName();
    OS << " {\n";
    for (const auto &F : C->ownFields())
      OS << "  " << F.Name << ": " << typeName(M, F.Ty) << ";\n";
    OS << "}\n\n";
  }

  for (const auto &G : M.globals())
    OS << "global " << G.Name << ": " << typeName(M, G.Ty) << "\n";
  if (!M.globals().empty())
    OS << "\n";

  for (const auto &F : M.functions()) {
    OS << (F->isMethod() ? "method " : "func ") << F->getName() << "(";
    for (unsigned I = 0; I != F->getNumParams(); ++I) {
      if (I)
        OS << ", ";
      OS << "r" << uint32_t(I);
    }
    OS << ") regs " << uint32_t(F->getNumRegs()) << " {\n";
    for (const auto &BB : F->blocks()) {
      OS << "bb" << BB->getId() << ":\n";
      for (const auto &I : BB->insts())
        OS << "  " << instToString(M, *I) << "\n";
    }
    OS << "}\n\n";
  }
}
