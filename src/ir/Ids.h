//===- ir/Ids.h - Common identifier types and sentinels --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer identifiers used across the IR, runtime and profiler, with
/// their "absent" sentinels. Everything is index-based so the profiler can
/// use flat vectors keyed by these ids.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_IDS_H
#define LUD_IR_IDS_H

#include <cstdint>

namespace lud {

/// Virtual register index within a function frame.
using Reg = uint16_t;
/// Index into Module's class table.
using ClassId = uint32_t;
/// Index into Module's function table.
using FuncId = uint32_t;
/// Index into Module's global (static) table.
using GlobalId = uint32_t;
/// Index into the runtime native registry.
using NativeId = uint32_t;
/// Globally dense instruction number, assigned by Module::finalize().
using InstrId = uint32_t;
/// Dense id of an allocation instruction, assigned by Module::finalize().
using AllocSiteId = uint32_t;
/// Interned virtual-method name.
using MethodNameId = uint32_t;
/// Field slot index within an object layout (superclass fields first).
using FieldSlot = uint32_t;

inline constexpr Reg kNoReg = 0xFFFF;
inline constexpr ClassId kNoClass = 0xFFFFFFFF;
inline constexpr FuncId kNoFunc = 0xFFFFFFFF;
inline constexpr GlobalId kNoGlobal = 0xFFFFFFFF;
inline constexpr InstrId kNoInstr = 0xFFFFFFFF;
inline constexpr AllocSiteId kNoAllocSite = 0xFFFFFFFF;
inline constexpr MethodNameId kNoMethodName = 0xFFFFFFFF;

} // namespace lud

#endif // LUD_IR_IDS_H
