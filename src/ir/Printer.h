//===- ir/Printer.h - Textual IR output ------------------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules in the textual .lud format accepted by ir/Parser.h.
/// printModule(parseModule(printModule(M))) is the identity on the printed
/// form (round-trip property, tested in tests/ir).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_PRINTER_H
#define LUD_IR_PRINTER_H

#include <string>

namespace lud {

class Instruction;
class Module;
class OutStream;

/// Writes the whole module in textual form.
void printModule(const Module &M, OutStream &OS);

/// Returns the one-line textual form of \p I (no trailing newline), e.g.
/// "r3 = add r1, r2". Useful for reports and diagnostics.
std::string instToString(const Module &M, const Instruction &I);

} // namespace lud

#endif // LUD_IR_PRINTER_H
