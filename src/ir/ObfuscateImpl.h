//===- ir/ObfuscateImpl.h - Obfuscator rebuild state (internal) -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal state shared between the obfuscation driver (Obfuscate.cpp)
/// and the per-transform emitters (ObfuscatePasses.cpp). Not a public
/// header; include Obfuscate.h instead.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_IR_OBFUSCATEIMPL_H
#define LUD_IR_OBFUSCATEIMPL_H

#include "ir/Module.h"
#include "ir/Obfuscate.h"
#include "support/RNG.h"

namespace lud {
namespace detail {

/// A manifest entry recorded during the rebuild. Instruction pointers are
/// resolved to dense ids only after the output module's finalize().
struct PendingTag {
  ObfKind Kind;
  const Instruction *I; // alloc (Junk/StringTable) or CondBr (Opaque)
  FuncId Func;          // function ids carry over from the source module
};

/// One obfuscation run: clone-with-injection rebuild of a source module.
/// The driver walks the source; the emitters append injected code.
class Obfuscator {
public:
  Obfuscator(const Module &Src, const ObfuscateOptions &Opts)
      : Src(Src), Opts(Opts), Root(Opts.Seed) {}

  ObfuscationResult run();

private:
  bool inScope(const Function &F) const;

  // Transform emitters (ObfuscatePasses.cpp). All append to \p B with
  // fresh registers from \p NextReg and bump Injected.
  /// Allocates the module-wide junk accumulator at the top of the entry
  /// function and publishes its ref through JunkSink.
  void emitJunkAccumulator(BasicBlock &B, unsigned &NextReg, FuncId F);
  void emitJunk(BasicBlock &B, RNG &R, unsigned &NextReg, FuncId F);
  Reg emitJunkChain(BasicBlock &B, RNG &R, unsigned &NextReg);
  /// Replaces a Br terminator: emits the guard loads plus the CondBr into
  /// \p B and a never-taken diversion block branching back to \p Target.
  /// Returns the CondBr for the manifest.
  Instruction *emitOpaqueGuard(BasicBlock &B, Function &NF, RNG &R,
                               unsigned &NextReg, uint32_t Target);
  void emitDiversionPayload(BasicBlock &B, unsigned &NextReg);
  void emitStringTableBuild(BasicBlock &B, unsigned &NextReg, Reg TabReg,
                            const std::string &FuncName, FuncId F);
  void emitStringDecode(BasicBlock &B, RNG &R, unsigned &NextReg, Reg TabReg);

  const Module &Src;
  const ObfuscateOptions &Opts;
  RNG Root;
  std::unique_ptr<Module> Out;

  ClassId JunkClass = kNoClass;
  /// Fields declared on the junk class so far. Each injection writes its
  /// own fresh field: one writer per abstract location, so the site's
  /// n-RAC sums the injections instead of averaging hot writers away
  /// against cold ones (RAC is the mean over a location's writers).
  uint32_t NumJunkFields = 0;
  /// The accumulator object's ref lives here; every junk write loads it.
  GlobalId JunkSink = kNoGlobal;
  GlobalId OpaqueGlobal = kNoGlobal;
  int64_t OpaqueKey = 0;
  int64_t StringKey = 0;

  std::vector<PendingTag> Pending;
  size_t Injected = 0;
};

} // namespace detail
} // namespace lud

#endif // LUD_IR_OBFUSCATEIMPL_H
