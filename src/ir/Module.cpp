//===- ir/Module.cpp - Top-level program container ------------------------===//

#include "ir/Module.h"

#include "support/ErrorHandling.h"

using namespace lud;

Instruction::~Instruction() = default;

const char *lud::typeKindName(TypeKind K) {
  switch (K) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Float:
    return "float";
  case TypeKind::Ref:
    return "ref";
  case TypeKind::IntArray:
    return "int[]";
  case TypeKind::FloatArray:
    return "float[]";
  case TypeKind::RefArray:
    return "ref[]";
  }
  lud_unreachable("unknown TypeKind");
}

const char *lud::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::Div:
    return "div";
  case BinOp::Rem:
    return "rem";
  case BinOp::Shl:
    return "shl";
  case BinOp::Shr:
    return "shr";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::CmpEq:
    return "cmpeq";
  case BinOp::CmpNe:
    return "cmpne";
  case BinOp::CmpLt:
    return "cmplt";
  case BinOp::CmpLe:
    return "cmple";
  case BinOp::CmpGt:
    return "cmpgt";
  case BinOp::CmpGe:
    return "cmpge";
  }
  lud_unreachable("unknown BinOp");
}

const char *lud::unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Neg:
    return "neg";
  case UnOp::Not:
    return "not";
  case UnOp::I2F:
    return "i2f";
  case UnOp::F2I:
    return "f2i";
  case UnOp::FBits:
    return "fbits";
  case UnOp::BitsF:
    return "bitsf";
  }
  lud_unreachable("unknown UnOp");
}

const char *lud::cmpOpName(CmpOp Op) {
  switch (Op) {
  case CmpOp::Eq:
    return "==";
  case CmpOp::Ne:
    return "!=";
  case CmpOp::Lt:
    return "<";
  case CmpOp::Le:
    return "<=";
  case CmpOp::Gt:
    return ">";
  case CmpOp::Ge:
    return ">=";
  }
  lud_unreachable("unknown CmpOp");
}

ClassDecl *Module::addClass(std::string Name, ClassId Super) {
  assert(!Finalized && "cannot add classes after finalize()");
  assert(ClassByName.find(Name) == ClassByName.end() && "duplicate class");
  assert((Super == kNoClass || Super < Classes.size()) &&
         "superclass must be declared first");
  ClassId Id = Classes.size();
  Classes.emplace_back(std::make_unique<ClassDecl>(Id, Name, Super));
  ClassByName.emplace(std::move(Name), Id);
  return Classes.back().get();
}

Function *Module::addFunction(std::string Name, unsigned NumParams,
                              unsigned NumRegs, ClassId Owner) {
  assert(!Finalized && "cannot add functions after finalize()");
  assert(FuncByName.find(Name) == FuncByName.end() && "duplicate function");
  FuncId Id = Functions.size();
  Functions.emplace_back(
      std::make_unique<Function>(Id, Name, NumParams, NumRegs, Owner));
  FuncByName.emplace(std::move(Name), Id);
  return Functions.back().get();
}

GlobalId Module::addGlobal(std::string Name, Type Ty) {
  assert(!Finalized && "cannot add globals after finalize()");
  assert(GlobalByName.find(Name) == GlobalByName.end() && "duplicate global");
  GlobalId Id = Globals.size();
  Globals.push_back({Name, Ty});
  GlobalByName.emplace(std::move(Name), Id);
  return Id;
}

MethodNameId Module::internMethodName(const std::string &Name) {
  auto It = MethodNameIds.find(Name);
  if (It != MethodNameIds.end())
    return It->second;
  MethodNameId Id = MethodNames.size();
  MethodNames.push_back(Name);
  MethodNameIds.emplace(Name, Id);
  return Id;
}

NativeId Module::internNativeName(const std::string &Name) {
  auto It = NativeNameIds.find(Name);
  if (It != NativeNameIds.end())
    return It->second;
  NativeId Id = NativeNames.size();
  NativeNames.push_back(Name);
  NativeNameIds.emplace(Name, Id);
  return Id;
}

void Module::finalize() {
  assert(!Finalized && "finalize() called twice");
  Finalized = true;

  // Flatten vtables and freeze layouts. Classes are topologically ordered
  // by construction (super declared first).
  for (auto &C : Classes) {
    C->NumSlots = classFirstSlot(C->getId()) + C->ownFields().size();
    if (C->getSuper() != kNoClass)
      C->Vtable = Classes[C->getSuper()]->Vtable;
    for (const auto &[Method, Func] : C->ownMethods())
      C->Vtable[Method] = Func;
  }

  // Dense instruction and allocation-site numbering.
  for (auto &F : Functions) {
    for (auto &BB : F->blocks()) {
      for (auto &I : BB->insts()) {
        I->Id = InstrTable.size();
        InstrTable.push_back(I.get());
        InstrOwner.push_back(F->getId());
        if (auto *A = dyn_cast<AllocInst>(I.get())) {
          A->Site = AllocSiteTable.size();
          AllocSiteTable.push_back(A);
        } else if (auto *AA = dyn_cast<AllocArrayInst>(I.get())) {
          AA->Site = AllocSiteTable.size();
          AllocSiteTable.push_back(AA);
        }
      }
    }
  }
}

ClassId Module::findClass(const std::string &Name) const {
  auto It = ClassByName.find(Name);
  return It == ClassByName.end() ? kNoClass : It->second;
}

FuncId Module::findFunction(const std::string &Name) const {
  auto It = FuncByName.find(Name);
  return It == FuncByName.end() ? kNoFunc : It->second;
}

GlobalId Module::findGlobal(const std::string &Name) const {
  auto It = GlobalByName.find(Name);
  return It == GlobalByName.end() ? kNoGlobal : It->second;
}

MethodNameId Module::findMethodName(const std::string &Name) const {
  auto It = MethodNameIds.find(Name);
  return It == MethodNameIds.end() ? kNoMethodName : It->second;
}

FieldSlot Module::classFirstSlot(ClassId Class) const {
  const ClassDecl *D = Classes[Class].get();
  if (D->FirstSlotKnown)
    return D->FirstSlot;
  FieldSlot First = 0;
  if (D->getSuper() != kNoClass) {
    const ClassDecl *Super = Classes[D->getSuper()].get();
    First = classFirstSlot(D->getSuper()) + Super->ownFields().size();
    Super->LayoutFrozen = true;
  }
  D->FirstSlot = First;
  D->FirstSlotKnown = true;
  return First;
}

bool Module::resolveField(ClassId Class, const std::string &Name,
                          FieldSlot &SlotOut) const {
  for (ClassId C = Class; C != kNoClass; C = Classes[C]->getSuper()) {
    const ClassDecl *D = Classes[C].get();
    for (size_t I = 0, E = D->ownFields().size(); I != E; ++I) {
      if (D->ownFields()[I].Name == Name) {
        SlotOut = classFirstSlot(C) + I;
        return true;
      }
    }
  }
  return false;
}

bool Module::resolveFieldUnqualified(const std::string &Name,
                                     ClassId &ClassOut,
                                     FieldSlot &SlotOut) const {
  bool Found = false;
  for (const auto &C : Classes) {
    for (size_t I = 0, E = C->ownFields().size(); I != E; ++I) {
      if (C->ownFields()[I].Name != Name)
        continue;
      if (Found)
        return false; // Ambiguous.
      Found = true;
      ClassOut = C->getId();
      SlotOut = classFirstSlot(C->getId()) + I;
    }
  }
  return Found;
}

std::string Module::fieldName(ClassId Class, FieldSlot Slot) const {
  if (Slot == kElemSlot)
    return "ELM";
  if (Slot == kLenSlot)
    return "length";
  for (ClassId C = Class; C != kNoClass; C = Classes[C]->getSuper()) {
    const ClassDecl *D = Classes[C].get();
    FieldSlot First = classFirstSlot(C);
    if (Slot >= First && Slot < First + D->ownFields().size())
      return D->ownFields()[Slot - First].Name;
  }
  return "<slot" + std::to_string(Slot) + ">";
}

FuncId Module::lookupMethod(ClassId C, MethodNameId Method) const {
  assert(C < Classes.size() && "bad class in method lookup");
  const auto &VT = Classes[C]->Vtable;
  auto It = VT.find(Method);
  return It == VT.end() ? kNoFunc : It->second;
}

std::string Module::describeAllocSite(AllocSiteId Site) const {
  const Instruction *I = getAllocSite(Site);
  std::string What;
  if (const auto *A = dyn_cast<AllocInst>(I))
    What = "new " + Classes[A->Class]->getName();
  else if (const auto *AA = dyn_cast<AllocArrayInst>(I))
    What = std::string("new ") + typeKindName(AA->Elem) + "[]";
  else
    lud_unreachable("alloc site is not an allocation");
  return What + " @ " + getInstrFunction(I->getId())->getName() + " #" +
         std::to_string(Site);
}

FuncId Module::getEntry() const {
  if (Entry != kNoFunc)
    return Entry;
  return findFunction("main");
}
