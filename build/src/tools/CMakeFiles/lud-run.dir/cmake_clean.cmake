file(REMOVE_RECURSE
  "CMakeFiles/lud-run.dir/lud-run.cpp.o"
  "CMakeFiles/lud-run.dir/lud-run.cpp.o.d"
  "lud-run"
  "lud-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
