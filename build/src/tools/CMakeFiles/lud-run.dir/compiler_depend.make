# Empty compiler generated dependencies file for lud-run.
# This may be replaced when dependencies are built.
