# Empty compiler generated dependencies file for lud-gen.
# This may be replaced when dependencies are built.
