file(REMOVE_RECURSE
  "CMakeFiles/lud-gen.dir/lud-gen.cpp.o"
  "CMakeFiles/lud-gen.dir/lud-gen.cpp.o.d"
  "lud-gen"
  "lud-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
