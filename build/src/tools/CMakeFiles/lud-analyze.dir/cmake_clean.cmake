file(REMOVE_RECURSE
  "CMakeFiles/lud-analyze.dir/lud-analyze.cpp.o"
  "CMakeFiles/lud-analyze.dir/lud-analyze.cpp.o.d"
  "lud-analyze"
  "lud-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
