# Empty dependencies file for lud-analyze.
# This may be replaced when dependencies are built.
