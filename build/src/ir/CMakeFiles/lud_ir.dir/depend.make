# Empty dependencies file for lud_ir.
# This may be replaced when dependencies are built.
