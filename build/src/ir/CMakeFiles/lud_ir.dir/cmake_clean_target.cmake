file(REMOVE_RECURSE
  "liblud_ir.a"
)
