file(REMOVE_RECURSE
  "CMakeFiles/lud_ir.dir/Clone.cpp.o"
  "CMakeFiles/lud_ir.dir/Clone.cpp.o.d"
  "CMakeFiles/lud_ir.dir/Module.cpp.o"
  "CMakeFiles/lud_ir.dir/Module.cpp.o.d"
  "CMakeFiles/lud_ir.dir/Parser.cpp.o"
  "CMakeFiles/lud_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/lud_ir.dir/Printer.cpp.o"
  "CMakeFiles/lud_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/lud_ir.dir/Verifier.cpp.o"
  "CMakeFiles/lud_ir.dir/Verifier.cpp.o.d"
  "liblud_ir.a"
  "liblud_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
