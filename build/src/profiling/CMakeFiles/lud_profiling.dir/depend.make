# Empty dependencies file for lud_profiling.
# This may be replaced when dependencies are built.
