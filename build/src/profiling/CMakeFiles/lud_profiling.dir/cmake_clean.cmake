file(REMOVE_RECURSE
  "CMakeFiles/lud_profiling.dir/ConcreteProfiler.cpp.o"
  "CMakeFiles/lud_profiling.dir/ConcreteProfiler.cpp.o.d"
  "CMakeFiles/lud_profiling.dir/CopyProfiler.cpp.o"
  "CMakeFiles/lud_profiling.dir/CopyProfiler.cpp.o.d"
  "CMakeFiles/lud_profiling.dir/DepGraph.cpp.o"
  "CMakeFiles/lud_profiling.dir/DepGraph.cpp.o.d"
  "CMakeFiles/lud_profiling.dir/FlatProfiler.cpp.o"
  "CMakeFiles/lud_profiling.dir/FlatProfiler.cpp.o.d"
  "CMakeFiles/lud_profiling.dir/GraphIO.cpp.o"
  "CMakeFiles/lud_profiling.dir/GraphIO.cpp.o.d"
  "CMakeFiles/lud_profiling.dir/NullnessProfiler.cpp.o"
  "CMakeFiles/lud_profiling.dir/NullnessProfiler.cpp.o.d"
  "CMakeFiles/lud_profiling.dir/SlicingProfiler.cpp.o"
  "CMakeFiles/lud_profiling.dir/SlicingProfiler.cpp.o.d"
  "CMakeFiles/lud_profiling.dir/TypestateProfiler.cpp.o"
  "CMakeFiles/lud_profiling.dir/TypestateProfiler.cpp.o.d"
  "liblud_profiling.a"
  "liblud_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
