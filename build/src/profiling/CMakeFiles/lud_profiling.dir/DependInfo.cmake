
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/ConcreteProfiler.cpp" "src/profiling/CMakeFiles/lud_profiling.dir/ConcreteProfiler.cpp.o" "gcc" "src/profiling/CMakeFiles/lud_profiling.dir/ConcreteProfiler.cpp.o.d"
  "/root/repo/src/profiling/CopyProfiler.cpp" "src/profiling/CMakeFiles/lud_profiling.dir/CopyProfiler.cpp.o" "gcc" "src/profiling/CMakeFiles/lud_profiling.dir/CopyProfiler.cpp.o.d"
  "/root/repo/src/profiling/DepGraph.cpp" "src/profiling/CMakeFiles/lud_profiling.dir/DepGraph.cpp.o" "gcc" "src/profiling/CMakeFiles/lud_profiling.dir/DepGraph.cpp.o.d"
  "/root/repo/src/profiling/FlatProfiler.cpp" "src/profiling/CMakeFiles/lud_profiling.dir/FlatProfiler.cpp.o" "gcc" "src/profiling/CMakeFiles/lud_profiling.dir/FlatProfiler.cpp.o.d"
  "/root/repo/src/profiling/GraphIO.cpp" "src/profiling/CMakeFiles/lud_profiling.dir/GraphIO.cpp.o" "gcc" "src/profiling/CMakeFiles/lud_profiling.dir/GraphIO.cpp.o.d"
  "/root/repo/src/profiling/NullnessProfiler.cpp" "src/profiling/CMakeFiles/lud_profiling.dir/NullnessProfiler.cpp.o" "gcc" "src/profiling/CMakeFiles/lud_profiling.dir/NullnessProfiler.cpp.o.d"
  "/root/repo/src/profiling/SlicingProfiler.cpp" "src/profiling/CMakeFiles/lud_profiling.dir/SlicingProfiler.cpp.o" "gcc" "src/profiling/CMakeFiles/lud_profiling.dir/SlicingProfiler.cpp.o.d"
  "/root/repo/src/profiling/TypestateProfiler.cpp" "src/profiling/CMakeFiles/lud_profiling.dir/TypestateProfiler.cpp.o" "gcc" "src/profiling/CMakeFiles/lud_profiling.dir/TypestateProfiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/lud_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lud_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lud_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
