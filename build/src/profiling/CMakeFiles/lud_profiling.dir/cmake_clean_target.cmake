file(REMOVE_RECURSE
  "liblud_profiling.a"
)
