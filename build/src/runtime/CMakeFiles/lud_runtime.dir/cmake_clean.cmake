file(REMOVE_RECURSE
  "CMakeFiles/lud_runtime.dir/Natives.cpp.o"
  "CMakeFiles/lud_runtime.dir/Natives.cpp.o.d"
  "CMakeFiles/lud_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/lud_runtime.dir/Runtime.cpp.o.d"
  "liblud_runtime.a"
  "liblud_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
