file(REMOVE_RECURSE
  "liblud_runtime.a"
)
