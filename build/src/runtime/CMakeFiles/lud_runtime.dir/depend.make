# Empty dependencies file for lud_runtime.
# This may be replaced when dependencies are built.
