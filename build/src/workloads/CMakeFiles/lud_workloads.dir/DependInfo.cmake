
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/AppPatterns.cpp" "src/workloads/CMakeFiles/lud_workloads.dir/AppPatterns.cpp.o" "gcc" "src/workloads/CMakeFiles/lud_workloads.dir/AppPatterns.cpp.o.d"
  "/root/repo/src/workloads/DaCapo.cpp" "src/workloads/CMakeFiles/lud_workloads.dir/DaCapo.cpp.o" "gcc" "src/workloads/CMakeFiles/lud_workloads.dir/DaCapo.cpp.o.d"
  "/root/repo/src/workloads/Driver.cpp" "src/workloads/CMakeFiles/lud_workloads.dir/Driver.cpp.o" "gcc" "src/workloads/CMakeFiles/lud_workloads.dir/Driver.cpp.o.d"
  "/root/repo/src/workloads/Patterns.cpp" "src/workloads/CMakeFiles/lud_workloads.dir/Patterns.cpp.o" "gcc" "src/workloads/CMakeFiles/lud_workloads.dir/Patterns.cpp.o.d"
  "/root/repo/src/workloads/RandomProgram.cpp" "src/workloads/CMakeFiles/lud_workloads.dir/RandomProgram.cpp.o" "gcc" "src/workloads/CMakeFiles/lud_workloads.dir/RandomProgram.cpp.o.d"
  "/root/repo/src/workloads/StdLib.cpp" "src/workloads/CMakeFiles/lud_workloads.dir/StdLib.cpp.o" "gcc" "src/workloads/CMakeFiles/lud_workloads.dir/StdLib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiling/CMakeFiles/lud_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lud_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lud_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lud_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lud_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
