# Empty dependencies file for lud_workloads.
# This may be replaced when dependencies are built.
