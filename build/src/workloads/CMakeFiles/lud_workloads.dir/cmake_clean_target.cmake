file(REMOVE_RECURSE
  "liblud_workloads.a"
)
