file(REMOVE_RECURSE
  "CMakeFiles/lud_workloads.dir/AppPatterns.cpp.o"
  "CMakeFiles/lud_workloads.dir/AppPatterns.cpp.o.d"
  "CMakeFiles/lud_workloads.dir/DaCapo.cpp.o"
  "CMakeFiles/lud_workloads.dir/DaCapo.cpp.o.d"
  "CMakeFiles/lud_workloads.dir/Driver.cpp.o"
  "CMakeFiles/lud_workloads.dir/Driver.cpp.o.d"
  "CMakeFiles/lud_workloads.dir/Patterns.cpp.o"
  "CMakeFiles/lud_workloads.dir/Patterns.cpp.o.d"
  "CMakeFiles/lud_workloads.dir/RandomProgram.cpp.o"
  "CMakeFiles/lud_workloads.dir/RandomProgram.cpp.o.d"
  "CMakeFiles/lud_workloads.dir/StdLib.cpp.o"
  "CMakeFiles/lud_workloads.dir/StdLib.cpp.o.d"
  "liblud_workloads.a"
  "liblud_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
