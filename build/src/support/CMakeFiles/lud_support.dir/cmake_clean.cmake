file(REMOVE_RECURSE
  "CMakeFiles/lud_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/lud_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/lud_support.dir/OutStream.cpp.o"
  "CMakeFiles/lud_support.dir/OutStream.cpp.o.d"
  "liblud_support.a"
  "liblud_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
