# Empty dependencies file for lud_support.
# This may be replaced when dependencies are built.
