file(REMOVE_RECURSE
  "liblud_support.a"
)
