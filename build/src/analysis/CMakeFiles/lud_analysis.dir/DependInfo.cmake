
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CacheCost.cpp" "src/analysis/CMakeFiles/lud_analysis.dir/CacheCost.cpp.o" "gcc" "src/analysis/CMakeFiles/lud_analysis.dir/CacheCost.cpp.o.d"
  "/root/repo/src/analysis/Clients.cpp" "src/analysis/CMakeFiles/lud_analysis.dir/Clients.cpp.o" "gcc" "src/analysis/CMakeFiles/lud_analysis.dir/Clients.cpp.o.d"
  "/root/repo/src/analysis/CostModel.cpp" "src/analysis/CMakeFiles/lud_analysis.dir/CostModel.cpp.o" "gcc" "src/analysis/CMakeFiles/lud_analysis.dir/CostModel.cpp.o.d"
  "/root/repo/src/analysis/DeadValues.cpp" "src/analysis/CMakeFiles/lud_analysis.dir/DeadValues.cpp.o" "gcc" "src/analysis/CMakeFiles/lud_analysis.dir/DeadValues.cpp.o.d"
  "/root/repo/src/analysis/MultiHop.cpp" "src/analysis/CMakeFiles/lud_analysis.dir/MultiHop.cpp.o" "gcc" "src/analysis/CMakeFiles/lud_analysis.dir/MultiHop.cpp.o.d"
  "/root/repo/src/analysis/Optimizer.cpp" "src/analysis/CMakeFiles/lud_analysis.dir/Optimizer.cpp.o" "gcc" "src/analysis/CMakeFiles/lud_analysis.dir/Optimizer.cpp.o.d"
  "/root/repo/src/analysis/Report.cpp" "src/analysis/CMakeFiles/lud_analysis.dir/Report.cpp.o" "gcc" "src/analysis/CMakeFiles/lud_analysis.dir/Report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiling/CMakeFiles/lud_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lud_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lud_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lud_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
