file(REMOVE_RECURSE
  "liblud_analysis.a"
)
