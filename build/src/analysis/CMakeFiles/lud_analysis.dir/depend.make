# Empty dependencies file for lud_analysis.
# This may be replaced when dependencies are built.
