file(REMOVE_RECURSE
  "CMakeFiles/lud_analysis.dir/CacheCost.cpp.o"
  "CMakeFiles/lud_analysis.dir/CacheCost.cpp.o.d"
  "CMakeFiles/lud_analysis.dir/Clients.cpp.o"
  "CMakeFiles/lud_analysis.dir/Clients.cpp.o.d"
  "CMakeFiles/lud_analysis.dir/CostModel.cpp.o"
  "CMakeFiles/lud_analysis.dir/CostModel.cpp.o.d"
  "CMakeFiles/lud_analysis.dir/DeadValues.cpp.o"
  "CMakeFiles/lud_analysis.dir/DeadValues.cpp.o.d"
  "CMakeFiles/lud_analysis.dir/MultiHop.cpp.o"
  "CMakeFiles/lud_analysis.dir/MultiHop.cpp.o.d"
  "CMakeFiles/lud_analysis.dir/Optimizer.cpp.o"
  "CMakeFiles/lud_analysis.dir/Optimizer.cpp.o.d"
  "CMakeFiles/lud_analysis.dir/Report.cpp.o"
  "CMakeFiles/lud_analysis.dir/Report.cpp.o.d"
  "liblud_analysis.a"
  "liblud_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
