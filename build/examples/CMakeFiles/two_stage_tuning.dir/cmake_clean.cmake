file(REMOVE_RECURSE
  "CMakeFiles/two_stage_tuning.dir/two_stage_tuning.cpp.o"
  "CMakeFiles/two_stage_tuning.dir/two_stage_tuning.cpp.o.d"
  "two_stage_tuning"
  "two_stage_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_stage_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
