# Empty dependencies file for two_stage_tuning.
# This may be replaced when dependencies are built.
