file(REMOVE_RECURSE
  "CMakeFiles/find_low_utility.dir/find_low_utility.cpp.o"
  "CMakeFiles/find_low_utility.dir/find_low_utility.cpp.o.d"
  "find_low_utility"
  "find_low_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_low_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
