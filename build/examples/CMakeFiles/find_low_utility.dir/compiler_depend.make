# Empty compiler generated dependencies file for find_low_utility.
# This may be replaced when dependencies are built.
