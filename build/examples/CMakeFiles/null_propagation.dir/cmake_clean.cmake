file(REMOVE_RECURSE
  "CMakeFiles/null_propagation.dir/null_propagation.cpp.o"
  "CMakeFiles/null_propagation.dir/null_propagation.cpp.o.d"
  "null_propagation"
  "null_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/null_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
