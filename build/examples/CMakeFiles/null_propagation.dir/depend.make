# Empty dependencies file for null_propagation.
# This may be replaced when dependencies are built.
