file(REMOVE_RECURSE
  "CMakeFiles/copy_profiling.dir/copy_profiling.cpp.o"
  "CMakeFiles/copy_profiling.dir/copy_profiling.cpp.o.d"
  "copy_profiling"
  "copy_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copy_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
