# Empty dependencies file for copy_profiling.
# This may be replaced when dependencies are built.
