# Empty dependencies file for dacapo_tour.
# This may be replaced when dependencies are built.
