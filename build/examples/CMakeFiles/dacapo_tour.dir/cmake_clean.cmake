file(REMOVE_RECURSE
  "CMakeFiles/dacapo_tour.dir/dacapo_tour.cpp.o"
  "CMakeFiles/dacapo_tour.dir/dacapo_tour.cpp.o.d"
  "dacapo_tour"
  "dacapo_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dacapo_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
