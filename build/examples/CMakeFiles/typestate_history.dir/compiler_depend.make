# Empty compiler generated dependencies file for typestate_history.
# This may be replaced when dependencies are built.
