file(REMOVE_RECURSE
  "CMakeFiles/typestate_history.dir/typestate_history.cpp.o"
  "CMakeFiles/typestate_history.dir/typestate_history.cpp.o.d"
  "typestate_history"
  "typestate_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typestate_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
