file(REMOVE_RECURSE
  "CMakeFiles/auto_optimize_bench.dir/auto_optimize_bench.cpp.o"
  "CMakeFiles/auto_optimize_bench.dir/auto_optimize_bench.cpp.o.d"
  "auto_optimize_bench"
  "auto_optimize_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_optimize_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
