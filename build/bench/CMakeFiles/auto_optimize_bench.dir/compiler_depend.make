# Empty compiler generated dependencies file for auto_optimize_bench.
# This may be replaced when dependencies are built.
