# Empty compiler generated dependencies file for table1_bloat_bench.
# This may be replaced when dependencies are built.
