file(REMOVE_RECURSE
  "CMakeFiles/table1_bloat_bench.dir/table1_bloat_bench.cpp.o"
  "CMakeFiles/table1_bloat_bench.dir/table1_bloat_bench.cpp.o.d"
  "table1_bloat_bench"
  "table1_bloat_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bloat_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
