# Empty dependencies file for ablation_slicing_bench.
# This may be replaced when dependencies are built.
