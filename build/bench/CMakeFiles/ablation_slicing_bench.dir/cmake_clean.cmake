file(REMOVE_RECURSE
  "CMakeFiles/ablation_slicing_bench.dir/ablation_slicing_bench.cpp.o"
  "CMakeFiles/ablation_slicing_bench.dir/ablation_slicing_bench.cpp.o.d"
  "ablation_slicing_bench"
  "ablation_slicing_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slicing_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
