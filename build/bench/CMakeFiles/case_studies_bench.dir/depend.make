# Empty dependencies file for case_studies_bench.
# This may be replaced when dependencies are built.
