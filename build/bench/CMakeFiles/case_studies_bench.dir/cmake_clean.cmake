file(REMOVE_RECURSE
  "CMakeFiles/case_studies_bench.dir/case_studies_bench.cpp.o"
  "CMakeFiles/case_studies_bench.dir/case_studies_bench.cpp.o.d"
  "case_studies_bench"
  "case_studies_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_studies_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
