file(REMOVE_RECURSE
  "CMakeFiles/nrac_depth_bench.dir/nrac_depth_bench.cpp.o"
  "CMakeFiles/nrac_depth_bench.dir/nrac_depth_bench.cpp.o.d"
  "nrac_depth_bench"
  "nrac_depth_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nrac_depth_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
