# Empty dependencies file for nrac_depth_bench.
# This may be replaced when dependencies are built.
