# Empty dependencies file for ablation_context_bench.
# This may be replaced when dependencies are built.
