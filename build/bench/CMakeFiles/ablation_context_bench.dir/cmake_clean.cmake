file(REMOVE_RECURSE
  "CMakeFiles/ablation_context_bench.dir/ablation_context_bench.cpp.o"
  "CMakeFiles/ablation_context_bench.dir/ablation_context_bench.cpp.o.d"
  "ablation_context_bench"
  "ablation_context_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_context_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
