file(REMOVE_RECURSE
  "CMakeFiles/overhead_phases_bench.dir/overhead_phases_bench.cpp.o"
  "CMakeFiles/overhead_phases_bench.dir/overhead_phases_bench.cpp.o.d"
  "overhead_phases_bench"
  "overhead_phases_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_phases_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
