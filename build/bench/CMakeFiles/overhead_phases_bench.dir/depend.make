# Empty dependencies file for overhead_phases_bench.
# This may be replaced when dependencies are built.
