# Empty dependencies file for ablation_hops_bench.
# This may be replaced when dependencies are built.
