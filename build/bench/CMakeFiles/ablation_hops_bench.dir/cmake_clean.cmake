file(REMOVE_RECURSE
  "CMakeFiles/ablation_hops_bench.dir/ablation_hops_bench.cpp.o"
  "CMakeFiles/ablation_hops_bench.dir/ablation_hops_bench.cpp.o.d"
  "ablation_hops_bench"
  "ablation_hops_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hops_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
