# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lud_ir_tests[1]_include.cmake")
include("/root/repo/build/tests/lud_runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/lud_profiling_tests[1]_include.cmake")
include("/root/repo/build/tests/lud_analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/lud_workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/lud_support_tests[1]_include.cmake")
add_test(cli_lud_run_report "/root/repo/build/src/tools/lud-run" "--all" "--top" "5" "/root/repo/examples/programs/chart.lud")
set_tests_properties(cli_lud_run_report PROPERTIES  PASS_REGULAR_EXPRESSION "low-utility data structures" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_lud_run_baseline "/root/repo/build/src/tools/lud-run" "--baseline" "/root/repo/examples/programs/random7.lud")
set_tests_properties(cli_lud_run_baseline PROPERTIES  PASS_REGULAR_EXPRESSION "status: finished" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_lud_gen_pipe "sh" "-c" "/root/repo/build/src/tools/lud-gen derby 64 > derby_tmp.lud && /root/repo/build/src/tools/lud-run --overwrites --dump-graph derby_tmp.graph derby_tmp.lud && test -s derby_tmp.graph")
set_tests_properties(cli_lud_gen_pipe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;54;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_lud_analyze_offline "sh" "-c" "/root/repo/build/src/tools/lud-run --dump-graph offline_tmp.graph /root/repo/examples/programs/chart.lud > /dev/null && /root/repo/build/src/tools/lud-analyze /root/repo/examples/programs/chart.lud offline_tmp.graph")
set_tests_properties(cli_lud_analyze_offline PROPERTIES  PASS_REGULAR_EXPRESSION "low-utility data structures" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;62;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_two_stage_tuning "/root/repo/build/examples/two_stage_tuning")
set_tests_properties(example_two_stage_tuning PROPERTIES  PASS_REGULAR_EXPRESSION "stage 2" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;66;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "Low-utility data structures" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_find_low_utility "/root/repo/build/examples/find_low_utility")
set_tests_properties(example_find_low_utility PROPERTIES  PASS_REGULAR_EXPRESSION "eclipse finding" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_null_propagation "/root/repo/build/examples/null_propagation")
set_tests_properties(example_null_propagation PROPERTIES  PASS_REGULAR_EXPRESSION "propagation flow" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_typestate_history "/root/repo/build/examples/typestate_history")
set_tests_properties(example_typestate_history PROPERTIES  PASS_REGULAR_EXPRESSION "VIOLATION" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_copy_profiling "/root/repo/build/examples/copy_profiling")
set_tests_properties(example_copy_profiling PROPERTIES  PASS_REGULAR_EXPRESSION "copy chains" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_dacapo_tour "/root/repo/build/examples/dacapo_tour")
set_tests_properties(example_dacapo_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
