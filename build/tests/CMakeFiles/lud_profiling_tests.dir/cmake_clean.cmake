file(REMOVE_RECURSE
  "CMakeFiles/lud_profiling_tests.dir/profiling/ClientProfilersTest.cpp.o"
  "CMakeFiles/lud_profiling_tests.dir/profiling/ClientProfilersTest.cpp.o.d"
  "CMakeFiles/lud_profiling_tests.dir/profiling/DepGraphTest.cpp.o"
  "CMakeFiles/lud_profiling_tests.dir/profiling/DepGraphTest.cpp.o.d"
  "CMakeFiles/lud_profiling_tests.dir/profiling/FlatProfilerTest.cpp.o"
  "CMakeFiles/lud_profiling_tests.dir/profiling/FlatProfilerTest.cpp.o.d"
  "CMakeFiles/lud_profiling_tests.dir/profiling/GraphIOTest.cpp.o"
  "CMakeFiles/lud_profiling_tests.dir/profiling/GraphIOTest.cpp.o.d"
  "CMakeFiles/lud_profiling_tests.dir/profiling/QuotientTest.cpp.o"
  "CMakeFiles/lud_profiling_tests.dir/profiling/QuotientTest.cpp.o.d"
  "CMakeFiles/lud_profiling_tests.dir/profiling/SlicingProfilerTest.cpp.o"
  "CMakeFiles/lud_profiling_tests.dir/profiling/SlicingProfilerTest.cpp.o.d"
  "lud_profiling_tests"
  "lud_profiling_tests.pdb"
  "lud_profiling_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_profiling_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
