# Empty dependencies file for lud_profiling_tests.
# This may be replaced when dependencies are built.
