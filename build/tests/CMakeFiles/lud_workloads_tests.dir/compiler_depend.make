# Empty compiler generated dependencies file for lud_workloads_tests.
# This may be replaced when dependencies are built.
