
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/PropertyTest.cpp" "tests/CMakeFiles/lud_workloads_tests.dir/workloads/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/lud_workloads_tests.dir/workloads/PropertyTest.cpp.o.d"
  "/root/repo/tests/workloads/StdLibTest.cpp" "tests/CMakeFiles/lud_workloads_tests.dir/workloads/StdLibTest.cpp.o" "gcc" "tests/CMakeFiles/lud_workloads_tests.dir/workloads/StdLibTest.cpp.o.d"
  "/root/repo/tests/workloads/WorkloadTest.cpp" "tests/CMakeFiles/lud_workloads_tests.dir/workloads/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/lud_workloads_tests.dir/workloads/WorkloadTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiling/CMakeFiles/lud_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lud_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lud_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lud_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lud_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lud_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
