file(REMOVE_RECURSE
  "CMakeFiles/lud_workloads_tests.dir/workloads/PropertyTest.cpp.o"
  "CMakeFiles/lud_workloads_tests.dir/workloads/PropertyTest.cpp.o.d"
  "CMakeFiles/lud_workloads_tests.dir/workloads/StdLibTest.cpp.o"
  "CMakeFiles/lud_workloads_tests.dir/workloads/StdLibTest.cpp.o.d"
  "CMakeFiles/lud_workloads_tests.dir/workloads/WorkloadTest.cpp.o"
  "CMakeFiles/lud_workloads_tests.dir/workloads/WorkloadTest.cpp.o.d"
  "lud_workloads_tests"
  "lud_workloads_tests.pdb"
  "lud_workloads_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_workloads_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
