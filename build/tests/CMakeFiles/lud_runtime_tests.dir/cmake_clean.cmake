file(REMOVE_RECURSE
  "CMakeFiles/lud_runtime_tests.dir/runtime/InterpreterTest.cpp.o"
  "CMakeFiles/lud_runtime_tests.dir/runtime/InterpreterTest.cpp.o.d"
  "CMakeFiles/lud_runtime_tests.dir/runtime/RuntimeUnitTest.cpp.o"
  "CMakeFiles/lud_runtime_tests.dir/runtime/RuntimeUnitTest.cpp.o.d"
  "lud_runtime_tests"
  "lud_runtime_tests.pdb"
  "lud_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
