# Empty dependencies file for lud_runtime_tests.
# This may be replaced when dependencies are built.
