file(REMOVE_RECURSE
  "CMakeFiles/lud_ir_tests.dir/ir/ModuleTest.cpp.o"
  "CMakeFiles/lud_ir_tests.dir/ir/ModuleTest.cpp.o.d"
  "CMakeFiles/lud_ir_tests.dir/ir/ParserTest.cpp.o"
  "CMakeFiles/lud_ir_tests.dir/ir/ParserTest.cpp.o.d"
  "lud_ir_tests"
  "lud_ir_tests.pdb"
  "lud_ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
