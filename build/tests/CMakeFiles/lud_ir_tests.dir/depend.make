# Empty dependencies file for lud_ir_tests.
# This may be replaced when dependencies are built.
