file(REMOVE_RECURSE
  "CMakeFiles/lud_support_tests.dir/support/SupportTest.cpp.o"
  "CMakeFiles/lud_support_tests.dir/support/SupportTest.cpp.o.d"
  "lud_support_tests"
  "lud_support_tests.pdb"
  "lud_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
