# Empty compiler generated dependencies file for lud_support_tests.
# This may be replaced when dependencies are built.
