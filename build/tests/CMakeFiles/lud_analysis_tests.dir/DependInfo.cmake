
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/ClientsTest.cpp" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/ClientsTest.cpp.o" "gcc" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/ClientsTest.cpp.o.d"
  "/root/repo/tests/analysis/CostModelTest.cpp" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/CostModelTest.cpp.o" "gcc" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/CostModelTest.cpp.o.d"
  "/root/repo/tests/analysis/DeadValuesTest.cpp" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/DeadValuesTest.cpp.o" "gcc" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/DeadValuesTest.cpp.o.d"
  "/root/repo/tests/analysis/ExtensionsTest.cpp" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/ExtensionsTest.cpp.o" "gcc" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/ExtensionsTest.cpp.o.d"
  "/root/repo/tests/analysis/Figure3Test.cpp" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/Figure3Test.cpp.o" "gcc" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/Figure3Test.cpp.o.d"
  "/root/repo/tests/analysis/OptimizerTest.cpp" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/OptimizerTest.cpp.o" "gcc" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/OptimizerTest.cpp.o.d"
  "/root/repo/tests/analysis/ReportTest.cpp" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/ReportTest.cpp.o" "gcc" "tests/CMakeFiles/lud_analysis_tests.dir/analysis/ReportTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiling/CMakeFiles/lud_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lud_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lud_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lud_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lud_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lud_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
