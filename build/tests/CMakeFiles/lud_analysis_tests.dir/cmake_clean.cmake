file(REMOVE_RECURSE
  "CMakeFiles/lud_analysis_tests.dir/analysis/ClientsTest.cpp.o"
  "CMakeFiles/lud_analysis_tests.dir/analysis/ClientsTest.cpp.o.d"
  "CMakeFiles/lud_analysis_tests.dir/analysis/CostModelTest.cpp.o"
  "CMakeFiles/lud_analysis_tests.dir/analysis/CostModelTest.cpp.o.d"
  "CMakeFiles/lud_analysis_tests.dir/analysis/DeadValuesTest.cpp.o"
  "CMakeFiles/lud_analysis_tests.dir/analysis/DeadValuesTest.cpp.o.d"
  "CMakeFiles/lud_analysis_tests.dir/analysis/ExtensionsTest.cpp.o"
  "CMakeFiles/lud_analysis_tests.dir/analysis/ExtensionsTest.cpp.o.d"
  "CMakeFiles/lud_analysis_tests.dir/analysis/Figure3Test.cpp.o"
  "CMakeFiles/lud_analysis_tests.dir/analysis/Figure3Test.cpp.o.d"
  "CMakeFiles/lud_analysis_tests.dir/analysis/OptimizerTest.cpp.o"
  "CMakeFiles/lud_analysis_tests.dir/analysis/OptimizerTest.cpp.o.d"
  "CMakeFiles/lud_analysis_tests.dir/analysis/ReportTest.cpp.o"
  "CMakeFiles/lud_analysis_tests.dir/analysis/ReportTest.cpp.o.d"
  "lud_analysis_tests"
  "lud_analysis_tests.pdb"
  "lud_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
