# Empty dependencies file for lud_analysis_tests.
# This may be replaced when dependencies are built.
